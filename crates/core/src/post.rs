//! Error-bounded adaptive Bézier post-processing (§III-B).
//!
//! Block-wise compressors lose spatial information at block boundaries. The
//! post-process rebuilds it: for each point `d₄` adjacent to a block
//! boundary, a quadratic Bézier curve through its two axis neighbours gives
//! `B(0.5) = ¼d₃ + ½d₄ + ¼d₅`, and the correction is clamped to
//! `d₄ ± a·eb` so the error bound is never betrayed. The intensity `a < 1`
//! is chosen **per dimension** by a lightweight sampling pass (< 1.5% of the
//! data) followed by stochastic gradient descent over the compressor-specific
//! candidate set (§III-B "dynamic limit/intensity").

use hqmr_grid::{Dims3, Field3};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Post-processing configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PostConfig {
    /// Candidate intensities (the paper's per-compressor sets).
    pub candidates: Vec<f64>,
    /// Block-boundary period per axis (`None` ⇒ no boundaries on that axis).
    pub periods: [Option<usize>; 3],
    /// Target sampling rate for intensity selection (paper: < 1.5%).
    pub sample_frac: f64,
    /// Sample window side, in multiples of the boundary period (`j`).
    pub sample_mult: usize,
    /// SGD epochs over the sample windows.
    pub sgd_epochs: usize,
    /// RNG seed for sampling and SGD shuffling.
    pub seed: u64,
    /// Run the smoothing passes with rayon (Table IX's OpenMP analogue).
    pub parallel: bool,
}

impl PostConfig {
    fn with(candidates: Vec<f64>, period: usize) -> Self {
        PostConfig {
            candidates,
            periods: [Some(period); 3],
            sample_frac: 0.015,
            sample_mult: 2,
            sgd_epochs: 8,
            seed: 0x9E37,
            parallel: true,
        }
    }

    /// SZ2 on uniform data: `a ∈ {0.05, 0.10, …, 0.50}`, 6³ blocks.
    pub fn sz2() -> Self {
        Self::with((1..=10).map(|i| i as f64 * 0.05).collect(), 6)
    }

    /// AMRIC-SZ2 on multi-resolution data: same candidates, 4³ blocks.
    pub fn sz2_multires() -> Self {
        Self::with((1..=10).map(|i| i as f64 * 0.05).collect(), 4)
    }

    /// ZFP: `a ∈ {0.005, …, 0.05}` (smaller because ZFP's real error sits
    /// well below its tolerance), 4³ blocks.
    pub fn zfp() -> Self {
        Self::with((1..=10).map(|i| i as f64 * 0.005).collect(), 4)
    }

    /// SZ3 on merged multi-resolution arrays: boundaries only along the long
    /// (z) axis with the unit-block period (§III-B "also improve … SZ3").
    pub fn sz3_multires(unit: usize) -> Self {
        let mut cfg = Self::with((1..=10).map(|i| i as f64 * 0.05).collect(), unit);
        cfg.periods = [None, None, Some(unit)];
        cfg
    }

    /// Disables rayon (Table IX's serial column).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// Chosen intensities and selection metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityChoice {
    /// Per-axis intensity (0 ⇒ post-processing disabled on that axis).
    pub a: [f64; 3],
    /// Fraction of the field actually sampled.
    pub sample_rate: f64,
    /// Sampled squared error before/after, for diagnostics.
    pub sample_err_before: f64,
    /// See `sample_err_before`.
    pub sample_err_after: f64,
}

/// Whether `i` (position along an axis of extent `n` with boundary period
/// `p`) is adjacent to a block boundary and has both Bézier neighbours.
#[inline]
fn is_boundary_adjacent(i: usize, n: usize, p: usize) -> bool {
    if i == 0 || i + 1 >= n {
        return false;
    }
    let m = i % p;
    m == p - 1 || m == 0
}

/// Updates the boundary pair `(b−1, b)` along a strided line in place.
/// All four stencil values are snapshotted before writing, so the result is
/// identical to evaluating every correction against the pristine buffer
/// (cells of *different* boundaries never overlap for periods ≥ 3).
#[inline]
fn smooth_pair(buf: &mut [f32], base: usize, stride: usize, b: usize, n: usize, limit: f64) {
    let at = |q: usize| buf[base + q * stride] as f64;
    let a0 = at(b - 2);
    let b0 = at(b - 1);
    let c0 = at(b);
    let new_b = (0.25 * a0 + 0.5 * b0 + 0.25 * c0).clamp(b0 - limit, b0 + limit) as f32;
    let new_c = if b + 1 < n {
        let d0 = at(b + 1);
        (0.25 * b0 + 0.5 * c0 + 0.25 * d0).clamp(c0 - limit, c0 + limit) as f32
    } else {
        c0 as f32
    };
    buf[base + (b - 1) * stride] = new_b;
    buf[base + b * stride] = new_c;
}

/// One smoothing pass along `axis`, in place. Only boundary-adjacent cells
/// (`≈ 2/period` of the field) are visited — Table IX's "highly
/// parallelizable, minimal overhead" property depends on this.
fn pass_axis(cur: &mut Field3, axis: usize, p: usize, limit: f64, parallel: bool) {
    let d = cur.dims();
    let n_axis = d.as_array()[axis];
    assert!(
        p >= 3,
        "post-process period must be ≥ 3 for pair independence"
    );
    if n_axis <= p {
        return;
    }
    let (ny, nz) = (d.ny, d.nz);
    let slab = ny * nz;
    match axis {
        2 => {
            let apply = |row: &mut [f32]| {
                let mut b = p;
                while b < nz {
                    smooth_pair(row, 0, 1, b, nz, limit);
                    b += p;
                }
            };
            if parallel {
                cur.data_mut().par_chunks_mut(nz).for_each(apply);
            } else {
                cur.data_mut().chunks_mut(nz).for_each(apply);
            }
        }
        1 => {
            let apply = |s: &mut [f32]| {
                let mut b = p;
                while b < ny {
                    for z in 0..nz {
                        smooth_pair(s, z, nz, b, ny, limit);
                    }
                    b += p;
                }
            };
            if parallel {
                cur.data_mut().par_chunks_mut(slab).for_each(apply);
            } else {
                cur.data_mut().chunks_mut(slab).for_each(apply);
            }
        }
        _ => {
            // x boundaries: each touches two whole slabs; boundaries are
            // independent, and within one boundary the (y, z) columns are
            // independent too — but slab-granular mutable splits are awkward,
            // so run columns serially (the work is 2/p of one pass anyway).
            let nx = d.nx;
            let data = cur.data_mut();
            let mut b = p;
            while b < nx {
                for c in 0..slab {
                    smooth_pair(data, c, slab, b, nx, limit);
                }
                b += p;
            }
        }
    }
}

/// Applies the full Bézier post-process: one pass per axis (sequentially, so
/// later axes see earlier corrections), each clamped to `a[axis]·eb`.
///
/// The result satisfies `|out − decomp|∞ ≤ max(a)·eb` per axis pass; combined
/// with the compressor's bound, `|out − orig|∞ ≤ (1 + Σa)·eb` worst case —
/// in practice the corrections move *toward* the original (that is the point).
pub fn bezier_pass(decomp: &Field3, eb: f64, a: [f64; 3], cfg: &PostConfig) -> Field3 {
    let mut cur = decomp.clone();
    for (axis, (&period, &ai)) in cfg.periods.iter().zip(&a).enumerate() {
        let (Some(p), limit) = (period, ai * eb) else {
            continue;
        };
        if limit <= 0.0 {
            continue;
        }
        pass_axis(&mut cur, axis, p, limit, cfg.parallel);
    }
    cur
}

/// Squared error of the post-processed sample window versus the original,
/// restricted to boundary-adjacent cells of `axis` (the only cells a pass
/// can change).
fn window_axis_error(orig: &Field3, dec: &Field3, axis: usize, p: usize, limit: f64) -> f64 {
    let d = dec.dims();
    let n_axis = d.as_array()[axis];
    let mut acc = 0.0f64;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let i = match axis {
                    0 => x,
                    1 => y,
                    _ => z,
                };
                if !is_boundary_adjacent(i, n_axis, p) {
                    continue;
                }
                let (va, vb, vc) = match axis {
                    0 => (dec.get(x - 1, y, z), dec.get(x, y, z), dec.get(x + 1, y, z)),
                    1 => (dec.get(x, y - 1, z), dec.get(x, y, z), dec.get(x, y + 1, z)),
                    _ => (dec.get(x, y, z - 1), dec.get(x, y, z), dec.get(x, y, z + 1)),
                };
                let b = 0.25 * va as f64 + 0.5 * vb as f64 + 0.25 * vc as f64;
                let v = b.clamp(vb as f64 - limit, vb as f64 + limit);
                let e = orig.get(x, y, z) as f64 - v;
                acc += e * e;
            }
        }
    }
    acc
}

/// Sample-window origins: `count³`-ish windows of side `side`, aligned to the
/// boundary period, spread through the volume with a low-discrepancy
/// (R3 Kronecker) sequence offset by `seed`.
///
/// Stratified placement instead of independent uniform draws: at small field
/// sizes the 1.5% budget affords only a handful of windows (often exactly
/// one), and with independent draws the selected intensity generalizes to the
/// whole field only by sampling luck. The Kronecker sequence keeps the same
/// determinism but guarantees spatial spread — the single-window case lands
/// at the domain center.
fn sample_windows(
    dims: Dims3,
    side: usize,
    align: usize,
    target_frac: f64,
    seed: u64,
) -> Vec<[usize; 3]> {
    let total = dims.len() as f64;
    let per_window = (side * side * side) as f64;
    let max_windows = ((target_frac * total / per_window).floor() as usize).max(1);
    let choices = |n: usize| -> usize { (n.saturating_sub(side)) / align + 1 };
    let (cx, cy, cz) = (choices(dims.nx), choices(dims.ny), choices(dims.nz));
    if cx == 0 || cy == 0 || cz == 0 {
        return vec![[0, 0, 0]];
    }
    // R3 sequence: powers of the inverse plastic constant.
    const ALPHA: [f64; 3] = [
        0.819_172_513_396_164_5,
        0.671_043_606_703_789_3,
        0.549_700_477_901_970_3,
    ];
    let offset = (seed % 1024) as f64 / 1024.0;
    let mut out = Vec::with_capacity(max_windows);
    for w in 0..max_windows {
        let coord = |axis: usize, n: usize| -> usize {
            let u = (0.5 + offset + (w + 1) as f64 * ALPHA[axis]).fract();
            ((u * n as f64) as usize).min(n - 1) * align
        };
        out.push([coord(0, cx), coord(1, cy), coord(2, cz)]);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Selects the per-axis intensity from already-decompressed data (offline
/// path). See [`select_intensity_sampled`] for the in-workflow path that
/// round-trips only the sampled windows.
pub fn select_intensity(
    orig: &Field3,
    decomp: &Field3,
    eb: f64,
    cfg: &PostConfig,
) -> IntensityChoice {
    assert_eq!(orig.dims(), decomp.dims(), "field dims mismatch");
    let max_p = cfg.periods.iter().flatten().copied().max().unwrap_or(4);
    let side = (cfg.sample_mult * max_p).min(orig.dims().min_extent().max(1));
    let windows = sample_windows(orig.dims(), side, max_p, cfg.sample_frac, cfg.seed);
    let wsize = Dims3::cube(side);
    let pairs: Vec<(Field3, Field3)> = windows
        .iter()
        .map(|&o| (orig.extract_box(o, wsize), decomp.extract_box(o, wsize)))
        .collect();
    optimize(
        &pairs,
        eb,
        cfg,
        windows.len() * wsize.len(),
        orig.dims().len(),
    )
}

/// Selects the intensity the way the in-situ workflow does (Table IX's
/// "sample + model" stage): extract sample windows from the *original*,
/// round-trip only those through `codec` (compress + decompress at the same
/// error bound), then optimize.
pub fn select_intensity_sampled(
    orig: &Field3,
    codec: impl Fn(&Field3) -> Field3,
    eb: f64,
    cfg: &PostConfig,
) -> IntensityChoice {
    let max_p = cfg.periods.iter().flatten().copied().max().unwrap_or(4);
    let side = (cfg.sample_mult * max_p).min(orig.dims().min_extent().max(1));
    let windows = sample_windows(orig.dims(), side, max_p, cfg.sample_frac, cfg.seed);
    let wsize = Dims3::cube(side);
    let pairs: Vec<(Field3, Field3)> = windows
        .iter()
        .map(|&o| {
            let ow = orig.extract_box(o, wsize);
            let dw = codec(&ow);
            (ow, dw)
        })
        .collect();
    optimize(
        &pairs,
        eb,
        cfg,
        windows.len() * wsize.len(),
        orig.dims().len(),
    )
}

/// Per-axis optimization: SGD over sample windows on a continuous `a`,
/// snapped to the nearest candidate, with a no-op fallback when post-
/// processing would not help (the paper's "conservative degree").
fn optimize(
    pairs: &[(Field3, Field3)],
    eb: f64,
    cfg: &PostConfig,
    sampled_cells: usize,
    total_cells: usize,
) -> IntensityChoice {
    let c_min = cfg.candidates.iter().copied().fold(f64::INFINITY, f64::min);
    let c_max = cfg.candidates.iter().copied().fold(0.0f64, f64::max);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5);
    let mut a = [0.0f64; 3];
    let mut err_before = 0.0f64;
    let mut err_after = 0.0f64;

    for (axis, a_slot) in a.iter_mut().enumerate() {
        let Some(p) = cfg.periods[axis] else {
            continue;
        };
        let f_axis = |limit: f64| -> f64 {
            pairs
                .iter()
                .map(|(o, d)| window_axis_error(o, d, axis, p, limit))
                .sum()
        };
        // SGD with sign updates (scale-free) on the continuous intensity.
        let mut cur = (c_min + c_max) / 2.0;
        let delta = (c_max - c_min) / 50.0;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for epoch in 0..cfg.sgd_epochs {
            let lr = (c_max - c_min) * 0.25 / (epoch + 1) as f64;
            order.shuffle(&mut rng);
            for &wi in &order {
                let (o, d) = &pairs[wi];
                let up = window_axis_error(o, d, axis, p, (cur + delta) * eb);
                let down = window_axis_error(o, d, axis, p, (cur - delta).max(0.0) * eb);
                let g = up - down;
                if g > 0.0 {
                    cur -= lr;
                } else if g < 0.0 {
                    cur += lr;
                }
                cur = cur.clamp(c_min, c_max);
            }
        }
        // Snap to the nearest candidate and keep it only if it beats no-op.
        let snapped = cfg
            .candidates
            .iter()
            .copied()
            .min_by(|x, y| (x - cur).abs().partial_cmp(&(y - cur).abs()).unwrap())
            .unwrap_or(0.0);
        let base = f_axis(0.0);
        let with = f_axis(snapped * eb);
        err_before += base;
        if with < base {
            *a_slot = snapped;
            err_after += with;
        } else {
            err_after += base;
        }
    }
    IntensityChoice {
        a,
        sample_rate: sampled_cells as f64 / total_cells.max(1) as f64,
        sample_err_before: err_before,
        sample_err_after: err_after,
    }
}

/// Exhaustive per-axis candidate search over the same samples (ablation
/// reference for the SGD).
pub fn select_intensity_exhaustive(
    orig: &Field3,
    decomp: &Field3,
    eb: f64,
    cfg: &PostConfig,
) -> IntensityChoice {
    assert_eq!(orig.dims(), decomp.dims(), "field dims mismatch");
    let max_p = cfg.periods.iter().flatten().copied().max().unwrap_or(4);
    let side = (cfg.sample_mult * max_p).min(orig.dims().min_extent().max(1));
    let windows = sample_windows(orig.dims(), side, max_p, cfg.sample_frac, cfg.seed);
    let wsize = Dims3::cube(side);
    let pairs: Vec<(Field3, Field3)> = windows
        .iter()
        .map(|&o| (orig.extract_box(o, wsize), decomp.extract_box(o, wsize)))
        .collect();
    let mut a = [0.0f64; 3];
    let mut before = 0.0;
    let mut after = 0.0;
    for (axis, a_slot) in a.iter_mut().enumerate() {
        let Some(p) = cfg.periods[axis] else {
            continue;
        };
        let f_axis = |limit: f64| -> f64 {
            pairs
                .iter()
                .map(|(o, d)| window_axis_error(o, d, axis, p, limit))
                .sum()
        };
        let base = f_axis(0.0);
        let best = cfg
            .candidates
            .iter()
            .copied()
            .map(|c| (f_axis(c * eb), c))
            .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap())
            .unwrap_or((base, 0.0));
        before += base;
        if best.0 < base {
            *a_slot = best.1;
            after += best.0;
        } else {
            after += base;
        }
    }
    IntensityChoice {
        a,
        sample_rate: windows.len() as f64 * wsize.len() as f64 / orig.dims().len() as f64,
        sample_err_before: before,
        sample_err_after: after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_metrics::psnr;

    /// Smooth truth plus per-block constant offsets — a caricature of
    /// block-wise compression artifacts with |error| ≤ eb.
    fn blocky_pair(n: usize, p: usize, eb: f32) -> (Field3, Field3) {
        let orig = Field3::from_fn(Dims3::cube(n), |x, y, z| {
            ((x as f32 * 0.21).sin() + (y as f32 * 0.17).cos() + (z as f32 * 0.13).sin()) * 10.0
        });
        let mut dec = orig.clone();
        let d = dec.dims();
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let block_id = (x / p) * 31 + (y / p) * 17 + (z / p) * 7;
                    let offset = (((block_id * 2654435761) % 200) as f32 / 100.0 - 1.0) * eb * 0.9;
                    let i = d.idx(x, y, z);
                    dec.data_mut()[i] += offset;
                }
            }
        }
        (orig, dec)
    }

    #[test]
    fn pass_changes_only_boundary_cells_within_limit() {
        let (_, dec) = blocky_pair(24, 4, 0.5);
        let cfg = PostConfig::zfp();
        let out = bezier_pass(&dec, 0.5, [0.05, 0.05, 0.05], &cfg);
        let d = dec.dims();
        for x in 0..24 {
            for y in 0..24 {
                for z in 0..24 {
                    let diff = (out.get(x, y, z) - dec.get(x, y, z)).abs();
                    let adj = is_boundary_adjacent(x, 24, 4)
                        || is_boundary_adjacent(y, 24, 4)
                        || is_boundary_adjacent(z, 24, 4);
                    if !adj {
                        assert_eq!(diff, 0.0, "non-boundary cell changed at {x},{y},{z}");
                    }
                    // Three sequential passes each move ≤ a·eb.
                    assert!(
                        diff as f64 <= 3.0 * 0.05 * 0.5 + 1e-6,
                        "{diff} at {x},{y},{z}"
                    );
                    let _ = d;
                }
            }
        }
    }

    #[test]
    fn post_process_improves_blocky_data() {
        let (orig, dec) = blocky_pair(32, 4, 0.5);
        let cfg = PostConfig::sz2_multires();
        let choice = select_intensity(&orig, &dec, 0.5, &cfg);
        assert!(
            choice.a.iter().any(|&a| a > 0.0),
            "should engage: {choice:?}"
        );
        let out = bezier_pass(&dec, 0.5, choice.a, &cfg);
        let before = psnr(&orig, &dec);
        let after = psnr(&orig, &out);
        assert!(after > before, "PSNR {before} → {after}");
    }

    #[test]
    fn sample_rate_stays_below_target() {
        let (orig, dec) = blocky_pair(32, 4, 0.1);
        let cfg = PostConfig::sz2_multires();
        let choice = select_intensity(&orig, &dec, 0.1, &cfg);
        assert!(choice.sample_rate <= 0.06, "rate {}", choice.sample_rate);
    }

    #[test]
    fn perfect_data_falls_back_to_noop() {
        // decomp == orig: any smoothing hurts, so the selector must disable.
        let (orig, _) = blocky_pair(24, 4, 0.1);
        let cfg = PostConfig::sz2_multires();
        let choice = select_intensity(&orig, &orig, 0.1, &cfg);
        let out = bezier_pass(&orig, 0.1, choice.a, &cfg);
        let e = hqmr_metrics::max_abs_err(&orig, &out);
        assert!(
            e <= 0.1 * choice.a.iter().fold(0.0f64, |m, &a| m.max(a)) * 3.0 + 1e-12,
            "residual {e} with a = {:?}",
            choice.a
        );
    }

    #[test]
    fn sgd_matches_exhaustive_reasonably() {
        let (orig, dec) = blocky_pair(32, 4, 0.5);
        let cfg = PostConfig::sz2_multires();
        let sgd = select_intensity(&orig, &dec, 0.5, &cfg);
        let exh = select_intensity_exhaustive(&orig, &dec, 0.5, &cfg);
        // The SGD choice's sampled error must be within 20% of the exhaustive
        // optimum's improvement.
        let imp_sgd = exh.sample_err_before - sgd.sample_err_after;
        let imp_exh = exh.sample_err_before - exh.sample_err_after;
        assert!(
            imp_sgd >= 0.8 * imp_exh,
            "sgd {:?} (imp {imp_sgd}) vs exhaustive {:?} (imp {imp_exh})",
            sgd.a,
            exh.a
        );
    }

    #[test]
    fn axis_specific_periods_respected() {
        let (_, dec) = blocky_pair(24, 8, 0.2);
        let mut cfg = PostConfig::sz3_multires(8);
        cfg.parallel = false;
        let out = bezier_pass(&dec, 0.2, [0.5, 0.5, 0.5], &cfg);
        // Only z-boundary-adjacent cells may change.
        for x in 0..24 {
            for y in 0..24 {
                for z in 0..24 {
                    if !is_boundary_adjacent(z, 24, 8) {
                        assert_eq!(out.get(x, y, z), dec.get(x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (_, dec) = blocky_pair(24, 4, 0.3);
        let par = bezier_pass(&dec, 0.3, [0.2, 0.1, 0.3], &PostConfig::sz2_multires());
        let ser = bezier_pass(
            &dec,
            0.3,
            [0.2, 0.1, 0.3],
            &PostConfig::sz2_multires().serial(),
        );
        assert_eq!(par, ser);
    }

    #[test]
    fn sampled_selection_with_real_codec() {
        let (orig, _) = blocky_pair(32, 4, 0.5);
        let tol = 0.5;
        let cfg = PostConfig::zfp();
        let choice = select_intensity_sampled(
            &orig,
            |w| {
                let r = hqmr_zfp::compress(w, &hqmr_zfp::ZfpConfig::new(tol));
                hqmr_zfp::decompress(&r.bytes).unwrap()
            },
            tol,
            &cfg,
        );
        assert!(choice.sample_rate < 0.1);
        // Whatever it picked, applying it to real decompressed data must not
        // catastrophically hurt (clamped by construction).
        let r = hqmr_zfp::compress(&orig, &hqmr_zfp::ZfpConfig::new(tol));
        let dec = hqmr_zfp::decompress(&r.bytes).unwrap();
        let out = bezier_pass(&dec, tol, choice.a, &cfg);
        assert!(psnr(&orig, &out) >= psnr(&orig, &dec) - 0.2);
    }
}
