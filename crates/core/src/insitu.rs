//! In-situ output pipeline with stage timings (Table IV).
//!
//! Table IV splits a simulation snapshot's output time into (1) pre-processing
//! — collecting unit blocks into the compression buffer (merging, padding;
//! AMRIC's stacking does more data rearrangement than our linear merge) —
//! and (2) compression + writing to the file system. [`write_snapshot`] runs
//! both stages through the block-indexed `hqmr-store` container (the same
//! pre-processing code as the offline path), so the file it writes is a
//! complete, seekable store: a post-hoc reader can pull one coarse level, an
//! ROI, or a progressive refinement out of the snapshot without decompressing
//! the rest — any [`crate::mrc::Backend`] works.

use crate::mrc::MrcConfig;
use hqmr_mr::MultiResData;
use hqmr_store::{encode_prepared_store, prepare_store, DEFAULT_CHUNK_BLOCKS};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Wall-clock seconds per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Merge + pad: filling the compression buffer.
    pub preprocess: f64,
    /// Codec compression and writing the stream to disk.
    pub compress_write: f64,
}

impl StageTimings {
    /// Total output time.
    pub fn total(&self) -> f64 {
        self.preprocess + self.compress_write
    }
}

/// Compresses `mr` under `cfg` into a block-indexed store file at `path`,
/// timing the two stages separately. Returns the timings and the bytes
/// written. The file is a complete `hqmr-store` container —
/// [`hqmr_store::StoreReader::open`] serves level, ROI, and progressive
/// reads from it directly.
pub fn write_snapshot(
    mr: &MultiResData,
    cfg: &MrcConfig,
    path: impl AsRef<Path>,
) -> std::io::Result<(StageTimings, u64)> {
    let mut timings = StageTimings::default();
    let scfg = cfg.store_config(DEFAULT_CHUNK_BLOCKS);

    // Stage 1: pre-process (group + merge + pad) every level into buffers.
    let t0 = Instant::now();
    let prepared = prepare_store(mr, &scfg);
    timings.preprocess = t0.elapsed().as_secs_f64();

    // Stage 2: compress each chunk and write the container.
    let t1 = Instant::now();
    let codec = cfg.backend.codec();
    let bytes = encode_prepared_store(mr, &prepared, &scfg, codec.as_ref());
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&bytes)?;
    w.flush()?;
    timings.compress_write = t1.elapsed().as_secs_f64();

    Ok((timings, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrc::Backend;
    use hqmr_grid::synth;
    use hqmr_mr::{to_amr, AmrConfig};
    use hqmr_store::StoreReader;

    #[test]
    fn snapshot_writes_and_times() {
        let f = synth::nyx_like(32, 5);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let path = std::env::temp_dir().join("hqmr_insitu_test.bin");
        let (t, bytes) = write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, on_disk);
        assert!(bytes > 0);
        assert!(t.preprocess >= 0.0 && t.compress_write > 0.0);
        assert!(t.total() >= t.compress_write);
    }

    #[test]
    fn snapshot_is_a_seekable_store_for_every_backend() {
        let f = synth::nyx_like(32, 6);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let path = std::env::temp_dir().join("hqmr_insitu_roundtrip.bin");
        for backend in Backend::ALL {
            let cfg = MrcConfig::ours_pad(1e6).with_backend(backend);
            write_snapshot(&mr, &cfg, &path).unwrap();
            let reader = StoreReader::open(&path).expect("snapshot must parse");
            assert_eq!(reader.codec_name(), backend.name());
            let back = reader.read_all().expect("snapshot must decode");
            assert_eq!(back.domain, mr.domain);
            assert_eq!(back.levels.len(), mr.levels.len());
            // Random access: one coarse level decodes only its own chunks.
            reader.reset_counters();
            let coarse = reader.read_level(1).unwrap();
            assert_eq!(coarse.blocks.len(), mr.levels[1].blocks.len());
            assert_eq!(
                reader.bytes_decoded(),
                reader.meta().levels[1].compressed_bytes()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn preprocess_stage_is_minor_next_to_compression() {
        // Table IV's structure: pre-processing (merge/pad) is cheap relative
        // to compression + writing, for both our linear merge and AMRIC's
        // stacking. (The *relative* linear-vs-stack comparison is a bench —
        // `tables tab04` — not a unit test: micro timings are too noisy.)
        let f = synth::nyx_like(64, 6);
        let mr = to_amr(&f, &AmrConfig::nyx_t1());
        let path = std::env::temp_dir().join("hqmr_insitu_cmp.bin");
        // Warm-up to fault in pages and allocators.
        write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let (lin, _) = write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let (stk, _) = write_snapshot(&mr, &MrcConfig::amric(1e6), &path).unwrap();
        std::fs::remove_file(&path).ok();
        for t in [lin, stk] {
            assert!(
                t.preprocess < t.compress_write,
                "preprocess {} should be under compress+write {}",
                t.preprocess,
                t.compress_write
            );
        }
    }
}
