//! In-situ output pipeline with stage timings (Table IV).
//!
//! Table IV splits a simulation snapshot's output time into (1) pre-processing
//! — collecting unit blocks into the compression buffer (merging, padding;
//! AMRIC's stacking does more data rearrangement than our linear merge) —
//! and (2) compression + writing to the file system. [`write_snapshot`] runs
//! both stages against the same SZ3MR machinery as the offline path and
//! reports wall-clock per stage.

use crate::sz3mr::{prepare_level, Sz3MrConfig};
use hqmr_codec::{tag, write_uvarint, Container};
use hqmr_grid::Field3;
use hqmr_mr::{MergedArray, MultiResData};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Wall-clock seconds per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Merge + pad: filling the compression buffer.
    pub preprocess: f64,
    /// SZ3 compression and writing the stream to disk.
    pub compress_write: f64,
}

impl StageTimings {
    /// Total output time.
    pub fn total(&self) -> f64 {
        self.preprocess + self.compress_write
    }
}

/// Compresses `mr` under `cfg` and writes the stream to `path`, timing the
/// two stages separately. Returns the timings and the bytes written.
pub fn write_snapshot(
    mr: &MultiResData,
    cfg: &Sz3MrConfig,
    path: impl AsRef<Path>,
) -> std::io::Result<(StageTimings, u64)> {
    let mut timings = StageTimings::default();

    // Stage 1: pre-process (merge + pad) every level into buffers.
    let t0 = Instant::now();
    let prepared: Vec<(Vec<MergedArray>, Vec<Field3>, bool)> =
        mr.levels.iter().map(|lvl| prepare_level(lvl, cfg)).collect();
    timings.preprocess = t0.elapsed().as_secs_f64();

    // Stage 2: compress and write.
    let t1 = Instant::now();
    let sz3_cfg = hqmr_sz3::Sz3Config {
        eb: cfg.eb,
        interp: cfg.interp,
        level_eb: cfg.adaptive_eb,
    };
    let mut c = Container::new();
    let mut head = Vec::new();
    write_uvarint(&mut head, mr.domain.nx as u64);
    write_uvarint(&mut head, mr.domain.ny as u64);
    write_uvarint(&mut head, mr.domain.nz as u64);
    write_uvarint(&mut head, mr.levels.len() as u64);
    c.push(tag(b"MRHD"), head);
    for (arrays, fields, _padded) in &prepared {
        for (_m, f) in arrays.iter().zip(fields) {
            let r = hqmr_sz3::compress(f, &sz3_cfg);
            c.push(tag(b"SZ3S"), r.bytes);
        }
    }
    let bytes = c.to_bytes();
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    w.write_all(&bytes)?;
    w.flush()?;
    timings.compress_write = t1.elapsed().as_secs_f64();

    Ok((timings, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_amr, AmrConfig};

    #[test]
    fn snapshot_writes_and_times() {
        let f = synth::nyx_like(32, 5);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let path = std::env::temp_dir().join("hqmr_insitu_test.bin");
        let (t, bytes) = write_snapshot(&mr, &Sz3MrConfig::ours(1e6), &path).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, on_disk);
        assert!(bytes > 0);
        assert!(t.preprocess >= 0.0 && t.compress_write > 0.0);
        assert!(t.total() >= t.compress_write);
    }

    #[test]
    fn preprocess_stage_is_minor_next_to_compression() {
        // Table IV's structure: pre-processing (merge/pad) is cheap relative
        // to compression + writing, for both our linear merge and AMRIC's
        // stacking. (The *relative* linear-vs-stack comparison is a bench —
        // `tables tab04` — not a unit test: micro timings are too noisy.)
        let f = synth::nyx_like(64, 6);
        let mr = to_amr(&f, &AmrConfig::nyx_t1());
        let path = std::env::temp_dir().join("hqmr_insitu_cmp.bin");
        // Warm-up to fault in pages and allocators.
        write_snapshot(&mr, &Sz3MrConfig::ours(1e6), &path).unwrap();
        let (lin, _) = write_snapshot(&mr, &Sz3MrConfig::ours(1e6), &path).unwrap();
        let (stk, _) = write_snapshot(&mr, &Sz3MrConfig::amric(1e6), &path).unwrap();
        std::fs::remove_file(&path).ok();
        for t in [lin, stk] {
            assert!(
                t.preprocess < t.compress_write,
                "preprocess {} should be under compress+write {}",
                t.preprocess,
                t.compress_write
            );
        }
    }
}
