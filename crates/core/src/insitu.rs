//! In-situ output pipeline with stage timings (Table IV).
//!
//! Table IV splits a simulation snapshot's output time into (1) pre-processing
//! — collecting unit blocks into the compression buffer (merging, padding;
//! AMRIC's stacking does more data rearrangement than our linear merge) —
//! and (2) compression + writing to the file system. [`write_snapshot`] runs
//! both stages through the block-indexed `hqmr-store` container (the same
//! pre-processing code as the offline path), so the file it writes is a
//! complete, seekable store: a post-hoc reader can pull one coarse level, an
//! ROI, or a progressive refinement out of the snapshot without decompressing
//! the rest — any [`crate::mrc::Backend`] works.

use crate::mrc::MrcConfig;
use hqmr_codec::Codec;
use hqmr_mr::MultiResData;
use hqmr_store::temporal::{
    FrameMeta, Prediction, TemporalEncoder, TemporalManifest, TemporalReader, MANIFEST_NAME,
};
use hqmr_store::{
    encode_prepared_store, parity_path, prepare_store, scrub_store, sidecar_bytes_for,
    DEFAULT_CHUNK_BLOCKS,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wall-clock seconds per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Merge + pad: filling the compression buffer.
    pub preprocess: f64,
    /// Codec compression and writing the stream to disk.
    pub compress_write: f64,
}

impl StageTimings {
    /// Total output time.
    pub fn total(&self) -> f64 {
        self.preprocess + self.compress_write
    }
}

/// Compresses `mr` under `cfg` into a block-indexed store file at `path`,
/// timing the two stages separately. Returns the timings and the bytes
/// written. The file is a complete `hqmr-store` container —
/// [`hqmr_store::StoreReader::open`] serves level, ROI, and progressive
/// reads from it directly.
///
/// The write is crash-safe: bytes land in a temporary sibling, are fsynced,
/// and only then renamed over `path`. A crash (or full disk) at any point
/// leaves either the previous snapshot or no file — never a half-written
/// container that a later reader would have to reject.
pub fn write_snapshot(
    mr: &MultiResData,
    cfg: &MrcConfig,
    path: impl AsRef<Path>,
) -> std::io::Result<(StageTimings, u64)> {
    let mut timings = StageTimings::default();
    let scfg = cfg.store_config(DEFAULT_CHUNK_BLOCKS);

    // Stage 1: pre-process (group + merge + pad) every level into buffers.
    let t0 = Instant::now();
    let prepared = prepare_store(mr, &scfg);
    timings.preprocess = t0.elapsed().as_secs_f64();

    // Stage 2: compress each chunk and write the container atomically.
    let t1 = Instant::now();
    let codec = cfg.backend.codec();
    let bytes = encode_prepared_store(mr, &prepared, &scfg, codec.as_ref());
    write_atomic(path.as_ref(), &bytes)?;
    write_sidecar(path.as_ref(), &bytes, scfg.parity_group)?;
    timings.compress_write = t1.elapsed().as_secs_f64();

    Ok((timings, bytes.len() as u64))
}

/// Publishes (or retires) the `.hqpr` parity sidecar next to a just-written
/// store. The store itself is renamed into place *first*: a crash in the
/// window between the two renames leaves a new store with a stale sidecar,
/// which the sidecar's store-tag detects as a typed mismatch and the next
/// scrub rebuilds — never a silent mis-repair, and never a lost store.
fn write_sidecar(store: &Path, bytes: &[u8], parity_group: usize) -> std::io::Result<()> {
    let spath = parity_path(store);
    match sidecar_bytes_for(bytes, parity_group) {
        Some(sc) => write_atomic(&spath, &sc),
        // Parity disabled: a sidecar left over from an earlier
        // parity-enabled write of this path would mismatch forever.
        None => match std::fs::remove_file(&spath) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        },
    }
}

/// Distinguishes staging files of concurrent writers *within* one process:
/// the pid alone is shared by every thread, so two threads snapshotting the
/// same path would otherwise stage into the same temp file and clobber each
/// other mid-write.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Temp-file + `sync_all` + atomic rename + parent-dir fsync. The pid in the
/// temp name keeps concurrent *processes* (e.g. two ranks snapshotting into
/// one directory) apart; the process-wide counter keeps concurrent *threads*
/// of one process apart.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot path has no filename",
            )
        })?
        .to_os_string();
    name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(name);

    let write = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(bytes)?;
        w.flush()?;
        // Push the data to stable storage before the rename makes it
        // visible — otherwise the rename can survive a crash the data
        // didn't.
        w.into_inner()
            .map_err(std::io::IntoInnerError::into_error)?
            .sync_all()?;
        std::fs::rename(&tmp, path)?;
        // The rename itself lives in the parent directory's metadata: until
        // that is flushed, a crash can roll the directory back to the old
        // entry (or none) even though the data blocks survived.
        sync_parent_dir(path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Fsyncs the directory containing `path`, making a completed rename
/// durable. On non-unix targets directories cannot be opened for syncing;
/// the rename is still atomic, just not crash-durable, matching the
/// platform's general guarantees.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Ok(())
    }
}

/// Per-frame report of a [`TemporalWriter::append`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// Time index of the frame within the store (0-based).
    pub index: usize,
    /// Frame file name within the store directory.
    pub file: String,
    /// Compressed frame size on disk.
    pub bytes: u64,
    /// Chunks stored as temporal deltas.
    pub delta_chunks: usize,
    /// Total chunks in the frame.
    pub total_chunks: usize,
    /// Wall-clock seconds spent encoding + writing the frame.
    pub seconds: f64,
}

/// Streaming writer for a temporal (`HQTM`) store directory — the in-situ
/// shape of the pipeline: the simulation calls [`TemporalWriter::append`]
/// once per timestep, each frame lands as its own crash-safe `HQST` file,
/// and the manifest is atomically rewritten after the frame file exists.
///
/// Crash safety is ordering: frame file first, manifest second, both through
/// the same temp + fsync + rename + parent-fsync path as snapshots. A crash at
/// any point leaves a manifest that references only complete frame files —
/// the store stays openable with every frame it had before the crash.
pub struct TemporalWriter {
    dir: PathBuf,
    codec: Box<dyn Codec>,
    enc: TemporalEncoder,
    manifest: TemporalManifest,
    buf: Vec<u8>,
    parity_group: usize,
}

impl TemporalWriter {
    /// Creates (or truncates) a temporal store directory for streaming
    /// appends under `cfg`'s merge/pad/eb/backend.
    pub fn create(
        dir: impl AsRef<Path>,
        cfg: &MrcConfig,
        prediction: Prediction,
    ) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = TemporalManifest::default();
        write_atomic(&dir.join(MANIFEST_NAME), &manifest.to_bytes())?;
        let scfg = cfg.store_config(DEFAULT_CHUNK_BLOCKS);
        Ok(TemporalWriter {
            dir,
            codec: cfg.backend.codec(),
            enc: TemporalEncoder::new(scfg, prediction),
            manifest,
            buf: Vec::new(),
            parity_group: scfg.parity_group,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Frames appended so far.
    pub fn frames(&self) -> usize {
        self.manifest.frames.len()
    }

    /// Encodes and durably writes the next frame (simulation step `step`),
    /// then atomically republishes the manifest.
    pub fn append(&mut self, step: u64, mr: &MultiResData) -> std::io::Result<FrameReport> {
        let t0 = Instant::now();
        let index = self.manifest.frames.len();
        let flags = self
            .enc
            .encode_frame_into(mr, self.codec.as_ref(), &mut self.buf)
            .map_err(std::io::Error::other)?;
        let file = format!("frame_{index:05}.hqst");
        let fpath = self.dir.join(&file);
        write_atomic(&fpath, &self.buf)?;
        write_sidecar(&fpath, &self.buf, self.parity_group)?;
        let delta_chunks: usize = flags.iter().map(|l| l.iter().filter(|&&d| d).count()).sum();
        let total_chunks: usize = flags.iter().map(Vec::len).sum();
        self.manifest.frames.push(FrameMeta {
            step,
            file: file.clone(),
            delta: flags,
        });
        write_atomic(&self.dir.join(MANIFEST_NAME), &self.manifest.to_bytes())?;
        Ok(FrameReport {
            index,
            file,
            bytes: self.buf.len() as u64,
            delta_chunks,
            total_chunks,
            seconds: t0.elapsed().as_secs_f64(),
        })
    }

    /// Recovers a torn temporal run — a crash anywhere in the append cycle
    /// — and returns a writer positioned to resume it, plus a typed report
    /// of what survived.
    ///
    /// The crash-safe append ordering (frame file, sidecar, then manifest)
    /// means the manifest only ever names complete frames, so salvage is
    /// prefix recovery: every manifest-listed frame is verified chunk by
    /// chunk (healing single flips from its parity sidecar where possible),
    /// the longest fully exact prefix is kept, and the manifest is
    /// atomically republished to exactly that prefix. Frames behind the
    /// first unrepairable one are dropped even if intact on disk — delta
    /// chains cross frames, so the unbroken prefix is the recoverable unit.
    /// Orphan `frame_*.hqst` files the manifest never adopted lost their
    /// delta flags with the unwritten manifest and cannot be decoded; they
    /// are reported and left on disk to be overwritten as the run resumes.
    /// Staging `*.tmp` leftovers are swept.
    ///
    /// The returned writer's closed-loop encoder is reseeded from the
    /// *decoded* last kept frame — exactly the state an unbroken run would
    /// hold — so resumed appends predict (and number keyframe intervals)
    /// as if the crash never happened.
    pub fn salvage(
        dir: impl AsRef<Path>,
        cfg: &MrcConfig,
        prediction: Prediction,
    ) -> std::io::Result<(TemporalWriter, SalvageReport)> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = TemporalReader::read_manifest(&dir).map_err(std::io::Error::other)?;
        let mut report = SalvageReport::default();

        // Longest exact prefix of the manifest, healing what parity can.
        let mut kept = 0usize;
        for fm in &manifest.frames {
            match scrub_store(&dir.join(&fm.file), None) {
                Ok(r) if r.all_exact() => {
                    report.repaired_chunks += r.repaired;
                    kept += 1;
                }
                _ => break,
            }
        }
        report.kept = kept;
        report.dropped = manifest.frames[kept..]
            .iter()
            .map(|f| f.file.clone())
            .collect();

        // Sweep staging leftovers; spot frame files outside the kept set.
        let listed: std::collections::HashSet<&str> = manifest.frames[..kept]
            .iter()
            .map(|f| f.file.as_str())
            .collect();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                std::fs::remove_file(entry.path())?;
                report.temps_removed += 1;
            } else if name.starts_with("frame_")
                && name.ends_with(".hqst")
                && !listed.contains(name.as_str())
                && !report.dropped.contains(&name)
            {
                report.orphans.push(name);
            }
        }
        report.orphans.sort();

        // Republish the manifest as exactly the verified prefix.
        let manifest = TemporalManifest {
            frames: manifest.frames[..kept].to_vec(),
        };
        write_atomic(&dir.join(MANIFEST_NAME), &manifest.to_bytes())?;

        let scfg = cfg.store_config(DEFAULT_CHUNK_BLOCKS);
        let mut enc = TemporalEncoder::new(scfg, prediction);
        if kept > 0 {
            let reader = TemporalReader::open(&dir).map_err(std::io::Error::other)?;
            let decoded = reader.read_frame(kept - 1).map_err(std::io::Error::other)?;
            enc.resume_from_decoded(&decoded, kept);
        }
        Ok((
            TemporalWriter {
                dir,
                codec: cfg.backend.codec(),
                enc,
                manifest,
                buf: Vec::new(),
                parity_group: scfg.parity_group,
            },
            report,
        ))
    }
}

/// What [`TemporalWriter::salvage`] found and kept of a torn run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Complete frames kept — the republished manifest lists exactly these.
    pub kept: usize,
    /// Chunks healed from parity sidecars while verifying the kept prefix.
    pub repaired_chunks: usize,
    /// Manifest-listed frame files dropped: the first was damaged beyond
    /// parity repair (or torn), the rest were stranded behind it.
    pub dropped: Vec<String>,
    /// Frame files on disk the manifest never adopted; undecodable (their
    /// delta flags died with the unwritten manifest) but left in place.
    pub orphans: Vec<String>,
    /// Staging `*.tmp` leftovers removed.
    pub temps_removed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrc::Backend;
    use hqmr_grid::synth;
    use hqmr_mr::{to_amr, AmrConfig};
    use hqmr_store::StoreReader;

    #[test]
    fn snapshot_writes_and_times() {
        let f = synth::nyx_like(32, 5);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let path = std::env::temp_dir().join("hqmr_insitu_test.bin");
        let (t, bytes) = write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let on_disk = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).ok();
        assert_eq!(bytes, on_disk);
        assert!(bytes > 0);
        assert!(t.preprocess >= 0.0 && t.compress_write > 0.0);
        assert!(t.total() >= t.compress_write);
    }

    #[test]
    fn snapshot_is_a_seekable_store_for_every_backend() {
        let f = synth::nyx_like(32, 6);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let path = std::env::temp_dir().join("hqmr_insitu_roundtrip.bin");
        for backend in Backend::ALL {
            let cfg = MrcConfig::ours_pad(1e6).with_backend(backend);
            write_snapshot(&mr, &cfg, &path).unwrap();
            let reader = StoreReader::open(&path).expect("snapshot must parse");
            assert_eq!(reader.codec_name(), backend.name());
            let back = reader.read_all().expect("snapshot must decode");
            assert_eq!(back.domain, mr.domain);
            assert_eq!(back.levels.len(), mr.levels.len());
            // Random access: one coarse level decodes only its own chunks.
            reader.reset_counters();
            let coarse = reader.read_level(1).unwrap();
            assert_eq!(coarse.blocks.len(), mr.levels[1].blocks.len());
            assert_eq!(
                reader.bytes_decoded(),
                reader.meta().levels[1].compressed_bytes()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_replaces_atomically_and_leaves_no_temp() {
        let f = synth::nyx_like(32, 7);
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let dir = std::env::temp_dir().join("hqmr_insitu_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        // Seed the destination with garbage an aborted write must not
        // corrupt into view, then overwrite it with a real snapshot.
        std::fs::write(&path, b"not a store").unwrap();
        write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        StoreReader::open(&path).expect("replacement is a complete store");
        // No staging files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging temp not cleaned up");
        // A write to an impossible destination fails without touching the
        // existing snapshot.
        let before = std::fs::read(&path).unwrap();
        let bad = dir.join("no_such_dir").join("snap.bin");
        assert!(write_snapshot(&mr, &MrcConfig::ours(1e6), &bad).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        // Concurrent threads snapshotting the *same* path stage into
        // distinct temp files (pid + per-process counter): every write
        // succeeds, the survivor is one complete store, nothing leaks.
        let expect = std::fs::read(&path).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap());
            }
        });
        assert_eq!(
            std::fs::read(&path).unwrap(),
            expect,
            "racing writers of identical content must leave identical bytes"
        );
        StoreReader::open(&path).expect("post-race file is a complete store");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "racing writers leaked staging files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temporal_writer_streams_frames_and_keeps_manifest_consistent() {
        use hqmr_mr::{resample_like, to_adaptive, RoiConfig};
        use hqmr_store::temporal::{Prediction, TemporalReader};

        let fields: Vec<_> = (0..4)
            .map(|t| synth::warpx_like(hqmr_grid::Dims3::cube(32), 3 + t as u64))
            .collect();
        let template = to_adaptive(&fields[0], &RoiConfig::new(8, 0.5));
        let dir = std::env::temp_dir().join("hqmr_insitu_temporal");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = MrcConfig::ours(1e-3);
        let mut w = TemporalWriter::create(&dir, &cfg, Prediction::delta()).unwrap();
        for (t, f) in fields.iter().enumerate() {
            let mr = resample_like(&template, f);
            let rep = w.append(t as u64 * 10, &mr).unwrap();
            assert_eq!(rep.index, t);
            assert!(rep.bytes > 0 && rep.total_chunks > 0);
            // After every append the directory is a complete, openable
            // store referencing only fully written frames — the crash-safe
            // invariant (frame file lands before the manifest names it).
            let r = TemporalReader::open(&dir).unwrap();
            assert_eq!(r.frame_count(), t + 1);
            assert_eq!(r.manifest().frames[t].step, t as u64 * 10);
        }
        assert_eq!(w.frames(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preprocess_stage_is_minor_next_to_compression() {
        // Table IV's structure: pre-processing (merge/pad) is cheap relative
        // to compression + writing, for both our linear merge and AMRIC's
        // stacking. (The *relative* linear-vs-stack comparison is a bench —
        // `tables tab04` — not a unit test: micro timings are too noisy.)
        let f = synth::nyx_like(64, 6);
        let mr = to_amr(&f, &AmrConfig::nyx_t1());
        let path = std::env::temp_dir().join("hqmr_insitu_cmp.bin");
        // Warm-up to fault in pages and allocators.
        write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let (lin, _) = write_snapshot(&mr, &MrcConfig::ours(1e6), &path).unwrap();
        let (stk, _) = write_snapshot(&mr, &MrcConfig::amric(1e6), &path).unwrap();
        std::fs::remove_file(&path).ok();
        for t in [lin, stk] {
            assert!(
                t.preprocess < t.compress_write,
                "preprocess {} should be under compress+write {}",
                t.preprocess,
                t.compress_write
            );
        }
    }
}
