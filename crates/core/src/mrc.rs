//! MRC: the backend-generic multi-resolution compression engine (§III-A).
//!
//! Per resolution level: arrange unit blocks into dense arrays
//! ([`MergeStrategy`]), optionally pad the two small dimensions
//! (Improvement 1, only for linear merges with `unit > 4`), then compress
//! each array with the selected [`Backend`] — SZ3, SZ2, ZFP, or the raw
//! passthrough — through the [`Codec`] trait. The serialized stream records
//! the codec id, and [`decompress_mr`] routes on it, so a stream is
//! self-describing down to the backend that produced it.
//!
//! This module grew out of `sz3mr` (which hard-wired SZ3); the arrangement
//! logic is unchanged, the per-level compress call now dispatches through
//! `&dyn Codec`. The pre-processing stage (merge + pad) lives in
//! [`hqmr_mr::prepare`], shared with the block-indexed `hqmr-store`
//! container so both formats feed codecs byte-identical arrays.

use hqmr_codec::{
    read_uvarint, tag, write_uvarint, Codec, CodecError, Container, ContainerError, NullCodec,
    NULL_CODEC_ID,
};
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::prepare::{decode_layout, encode_layout};
use hqmr_mr::{strip_padding, LevelData, MergeStrategy, MultiResData, PadKind};
use hqmr_store::StoreConfig;

pub use hqmr_mr::prepare::PreparedLevel;
use hqmr_sz2::{Sz2Codec, SZ2_CODEC_ID};
use hqmr_sz3::{InterpKind, LevelEbPolicy, Sz3Codec, SZ3_CODEC_ID};
use hqmr_zfp::{ZfpCodec, ZFP_CODEC_ID};

const TAG_HEAD: u32 = tag(b"MRHD");
const TAG_LEVEL: u32 = tag(b"LVHD");
const TAG_LAYOUT: u32 = tag(b"LAYT");
/// Codec-id section: which backend produced the per-array streams.
const TAG_CODEC: u32 = tag(b"CDID");

/// Which codec backend the MR engine drives, with its backend-specific
/// configuration. The error bound is *not* here — it lives in [`MrcConfig`]
/// and is passed through the [`Codec`] trait per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// SZ3-class global interpolation (the paper's primary target).
    Sz3 {
        /// Interpolator.
        interp: InterpKind,
        /// Adaptive per-level error bound (Improvement 2); SZ3-specific
        /// because the "levels" are SZ3's interpolation levels.
        level_eb: Option<LevelEbPolicy>,
    },
    /// SZ2-class block-wise prediction (the AMRIC pathway).
    Sz2 {
        /// Block side length (AMRIC found 4³ optimal for MR data).
        block: usize,
    },
    /// ZFP-class transform coding (the TAC pathway).
    Zfp,
    /// Lossless passthrough (debugging / arrangement-only measurements).
    Null,
}

impl Backend {
    /// Baseline SZ3: cubic interpolation, uniform error bound.
    pub const SZ3: Backend = Backend::Sz3 {
        interp: InterpKind::Cubic,
        level_eb: None,
    };
    /// SZ3 with the paper's α=2.25, β=8 adaptive level bounds.
    pub const SZ3_PAPER: Backend = Backend::Sz3 {
        interp: InterpKind::Cubic,
        level_eb: Some(LevelEbPolicy::PAPER),
    };
    /// SZ2 with AMRIC's 4³ multi-resolution blocks.
    pub const SZ2: Backend = Backend::Sz2 { block: 4 };
    /// ZFP fixed-accuracy.
    pub const ZFP: Backend = Backend::Zfp;
    /// Raw passthrough.
    pub const NULL: Backend = Backend::Null;

    /// One default instance per backend — the bench sweep matrix.
    pub const ALL: [Backend; 4] = [Self::SZ3, Self::SZ2, Self::ZFP, Self::NULL];

    /// Instantiates the codec this backend describes.
    pub fn codec(&self) -> Box<dyn Codec> {
        match *self {
            Backend::Sz3 { interp, level_eb } => Box::new(Sz3Codec { interp, level_eb }),
            Backend::Sz2 { block } => Box::new(Sz2Codec { block }),
            Backend::Zfp => Box::new(ZfpCodec),
            Backend::Null => Box::new(NullCodec),
        }
    }

    /// The backend's stream id (matches [`Codec::id`]).
    pub fn id(&self) -> u32 {
        match self {
            Backend::Sz3 { .. } => SZ3_CODEC_ID,
            Backend::Sz2 { .. } => SZ2_CODEC_ID,
            Backend::Zfp => ZFP_CODEC_ID,
            Backend::Null => NULL_CODEC_ID,
        }
    }

    /// The backend's stable name (matches [`Codec::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Sz3 { .. } => "sz3",
            Backend::Sz2 { .. } => "sz2",
            Backend::Zfp => "zfp",
            Backend::Null => "null",
        }
    }
}

/// MRC configuration: the arrangement axis (merge strategy + padding), the
/// error bound, and the codec backend. The named constructors map to the
/// paper's curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcConfig {
    /// Absolute error bound.
    pub eb: f64,
    /// Unit-block arrangement.
    pub merge: MergeStrategy,
    /// Padding for the small dims of linear merges (applied when `unit > 4`).
    pub pad: Option<PadKind>,
    /// Codec backend the per-array streams go through.
    pub backend: Backend,
}

impl MrcConfig {
    /// "Baseline-SZ3": linear merge, no padding, uniform error bound.
    pub fn baseline(eb: f64) -> Self {
        MrcConfig {
            eb,
            merge: MergeStrategy::Linear,
            pad: None,
            backend: Backend::SZ3,
        }
    }

    /// "AMRIC-SZ3": cubic stacking arrangement.
    pub fn amric(eb: f64) -> Self {
        MrcConfig {
            merge: MergeStrategy::Stack,
            ..Self::baseline(eb)
        }
    }

    /// "TAC-SZ3": adjacency-preserving boxes, compressed separately.
    pub fn tac(eb: f64) -> Self {
        MrcConfig {
            merge: MergeStrategy::Tac,
            ..Self::baseline(eb)
        }
    }

    /// "Ours (pad)": linear merge + linear-extrapolation padding.
    pub fn ours_pad(eb: f64) -> Self {
        MrcConfig {
            pad: Some(PadKind::Linear),
            ..Self::baseline(eb)
        }
    }

    /// "Ours (pad+eb)": padding + the paper's α=2.25, β=8 level bounds.
    pub fn ours(eb: f64) -> Self {
        MrcConfig {
            backend: Backend::SZ3_PAPER,
            ..Self::ours_pad(eb)
        }
    }

    /// Swaps the codec backend, keeping the arrangement.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Lowers this config to the block-indexed store writer's configuration,
    /// tiled every `chunk_blocks` unit blocks — the one place the
    /// `MrcConfig` → [`StoreConfig`] mapping lives (used by both the in-situ
    /// writer and the store-backed workflow).
    pub fn store_config(&self, chunk_blocks: usize) -> StoreConfig {
        StoreConfig {
            eb: self.eb,
            merge: self.merge,
            pad: self.pad,
            chunk_blocks: chunk_blocks.max(1),
            parity_group: hqmr_store::DEFAULT_PARITY_GROUP,
        }
    }
}

/// Per-compression statistics.
#[derive(Debug, Clone, Default)]
pub struct MrStats {
    /// Stored cells across all levels (CR denominator × 4 bytes).
    pub stored_cells: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Arrays compressed per level.
    pub arrays_per_level: Vec<usize>,
    /// Whether each level was padded.
    pub padded_levels: Vec<bool>,
    /// Name of the codec backend that produced the stream.
    pub codec: &'static str,
}

impl MrStats {
    /// Compression ratio versus raw `f32` storage of the stored cells.
    pub fn ratio(&self) -> f64 {
        (self.stored_cells * 4) as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Stage 1 (Table IV "pre-process"): merges and pads every level. The stage
/// itself lives in [`hqmr_mr::prepare`] so block-indexed containers
/// (`hqmr-store`) run the *same* code and produce byte-identical codec
/// inputs; this wrapper lowers the [`MrcConfig`] arrangement axis.
pub fn prepare_mr(mr: &MultiResData, cfg: &MrcConfig) -> Vec<PreparedLevel> {
    mr.levels
        .iter()
        .map(|level| hqmr_mr::prepare_level(level, cfg.merge, cfg.pad))
        .collect()
}

/// Stage 2 (Table IV "compress + write"): runs the codec over prepared
/// levels and serializes the container. `prepared` must come from
/// [`prepare_mr`] with the same `mr` and `cfg`.
pub fn encode_prepared(
    mr: &MultiResData,
    prepared: &[PreparedLevel],
    cfg: &MrcConfig,
) -> (Vec<u8>, MrStats) {
    assert_eq!(prepared.len(), mr.levels.len(), "prepared levels mismatch");
    let codec = cfg.backend.codec();
    let stream_tag = codec.id();

    let mut c = Container::new();
    let mut head = Vec::new();
    write_uvarint(&mut head, mr.domain.nx as u64);
    write_uvarint(&mut head, mr.domain.ny as u64);
    write_uvarint(&mut head, mr.domain.nz as u64);
    write_uvarint(&mut head, mr.levels.len() as u64);
    c.push(TAG_HEAD, head);
    c.push(TAG_CODEC, stream_tag.to_le_bytes().to_vec());

    let mut stats = MrStats {
        stored_cells: mr.total_cells(),
        codec: codec.name(),
        ..Default::default()
    };
    for (level, prep) in mr.levels.iter().zip(prepared) {
        let mut lv = Vec::new();
        write_uvarint(&mut lv, level.level as u64);
        write_uvarint(&mut lv, level.unit as u64);
        write_uvarint(&mut lv, level.dims.nx as u64);
        write_uvarint(&mut lv, level.dims.ny as u64);
        write_uvarint(&mut lv, level.dims.nz as u64);
        write_uvarint(&mut lv, prep.array_count() as u64);
        c.push(TAG_LEVEL, lv);
        for (m, f) in prep.blocks() {
            c.push(TAG_LAYOUT, encode_layout(m, prep.padded()));
            c.push(stream_tag, codec.compress(f, cfg.eb));
        }
        stats.arrays_per_level.push(prep.array_count());
        stats.padded_levels.push(prep.padded());
    }
    let bytes = c.to_bytes();
    stats.compressed_bytes = bytes.len();
    (bytes, stats)
}

/// Compresses multi-resolution data under `cfg` (both stages in one call).
pub fn compress_mr(mr: &MultiResData, cfg: &MrcConfig) -> (Vec<u8>, MrStats) {
    let prepared = prepare_mr(mr, cfg);
    encode_prepared(mr, &prepared, cfg)
}

/// MRC decompression errors.
#[derive(Debug)]
pub enum MrcError {
    /// Container-level failure.
    Container(ContainerError),
    /// Inner codec stream failure.
    Codec(CodecError),
    /// Structural inconsistency.
    Malformed(&'static str),
}

impl std::fmt::Display for MrcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrcError::Container(e) => write!(f, "container: {e}"),
            MrcError::Codec(e) => write!(f, "codec: {e}"),
            MrcError::Malformed(m) => write!(f, "malformed mrc stream: {m}"),
        }
    }
}

impl std::error::Error for MrcError {}

impl From<ContainerError> for MrcError {
    fn from(e: ContainerError) -> Self {
        MrcError::Container(e)
    }
}

impl From<CodecError> for MrcError {
    fn from(e: CodecError) -> Self {
        MrcError::Codec(e)
    }
}

/// Decompresses a stream produced by [`compress_mr`], routing each per-array
/// stream through the codec recorded in the container.
pub fn decompress_mr(bytes: &[u8]) -> Result<MultiResData, MrcError> {
    let c = Container::from_bytes(bytes)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let rd = |buf: &[u8], pos: &mut usize| -> Result<usize, MrcError> {
        read_uvarint(buf, pos)
            .map(|v| v as usize)
            .ok_or(MrcError::Malformed("varint"))
    };
    let nx = rd(head, &mut pos)?;
    let ny = rd(head, &mut pos)?;
    let nz = rd(head, &mut pos)?;
    let n_levels = rd(head, &mut pos)?;
    let domain = Dims3::new(nx, ny, nz);

    // Codec routing: the recorded id selects the backend. The section is
    // mandatory — per-array streams also carry their own embedded ids, so a
    // container without one cannot decode under any backend anyway.
    let id_bytes = c
        .get(TAG_CODEC)
        .ok_or(MrcError::Malformed("missing codec id section"))?;
    let codec_id = u32::from_le_bytes(
        id_bytes
            .try_into()
            .map_err(|_| MrcError::Malformed("codec id width"))?,
    );
    // One decode registry for both containers: `hqmr_store::codec_for_id`.
    // Backend parameters don't matter for decoding — streams are
    // self-describing — so the registry's defaults suffice.
    let codec = hqmr_store::codec_for_id(codec_id).ok_or(CodecError::UnknownCodec(codec_id))?;

    let level_heads: Vec<&[u8]> = c.get_all(TAG_LEVEL).collect();
    if level_heads.len() != n_levels {
        return Err(MrcError::Malformed("level count"));
    }
    let mut layouts = c.get_all(TAG_LAYOUT);
    let mut streams = c.get_all(codec_id);

    let mut levels = Vec::with_capacity(n_levels);
    // One reconstruction buffer reused across every per-array decode —
    // `decompress_into` reshapes it instead of allocating per stream.
    let mut scratch = Field3::zeros(Dims3::new(0, 0, 0));
    for lv in level_heads {
        let mut p = 0usize;
        let level = rd(lv, &mut p)?;
        let unit = rd(lv, &mut p)?;
        let dx = rd(lv, &mut p)?;
        let dy = rd(lv, &mut p)?;
        let dz = rd(lv, &mut p)?;
        let n_arrays = rd(lv, &mut p)?;
        let mut blocks = Vec::new();
        for _ in 0..n_arrays {
            let layout = layouts
                .next()
                .ok_or(MrcError::Malformed("missing layout"))?;
            let stream = streams
                .next()
                .ok_or(MrcError::Malformed("missing stream"))?;
            let (padded, a_unit, slots) =
                decode_layout(layout).ok_or(MrcError::Malformed("layout"))?;
            codec.decompress_into(stream, &mut scratch)?;
            if padded {
                let stripped = strip_padding(&scratch);
                blocks.extend(hqmr_mr::split_blocks(&stripped, a_unit, &slots));
            } else {
                blocks.extend(hqmr_mr::split_blocks(&scratch, a_unit, &slots));
            }
        }
        blocks.sort_by_key(|b| (b.origin[0], b.origin[1], b.origin[2]));
        levels.push(LevelData {
            level,
            unit,
            dims: Dims3::new(dx, dy, dz),
            blocks,
        });
    }
    Ok(MultiResData { domain, levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, to_amr, AmrConfig, RoiConfig, Upsample};

    fn max_block_err(a: &MultiResData, b: &MultiResData) -> f64 {
        let mut worst = 0.0f64;
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.blocks.len(), lb.blocks.len());
            for (ba, bb) in la.blocks.iter().zip(&lb.blocks) {
                assert_eq!(ba.origin, bb.origin);
                for (&x, &y) in ba.data.iter().zip(&bb.data) {
                    worst = worst.max((x as f64 - y as f64).abs());
                }
            }
        }
        worst
    }

    fn test_mr() -> MultiResData {
        let f = synth::nyx_like(32, 9);
        to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]))
    }

    #[test]
    fn roundtrip_all_strategies_respect_bound() {
        let mr = test_mr();
        let eb = 1e6; // nyx-scale values ~1e8
        for cfg in [
            MrcConfig::baseline(eb),
            MrcConfig::amric(eb),
            MrcConfig::tac(eb),
            MrcConfig::ours_pad(eb),
            MrcConfig::ours(eb),
        ] {
            let (bytes, stats) = compress_mr(&mr, &cfg);
            let back = decompress_mr(&bytes).unwrap();
            assert_eq!(back.domain, mr.domain);
            let err = max_block_err(&mr, &back);
            assert!(err <= eb + 1e-3, "{cfg:?}: err {err}");
            assert!(stats.ratio() > 1.0);
        }
    }

    #[test]
    fn roundtrip_all_backends_respect_bound() {
        let mr = test_mr();
        let eb = 1e6;
        for backend in Backend::ALL {
            for base in [
                MrcConfig::ours_pad(eb),
                MrcConfig::amric(eb),
                MrcConfig::tac(eb),
            ] {
                let cfg = base.with_backend(backend);
                let (bytes, stats) = compress_mr(&mr, &cfg);
                assert_eq!(stats.codec, backend.name());
                let back = decompress_mr(&bytes).unwrap();
                assert_eq!(back.domain, mr.domain);
                let err = max_block_err(&mr, &back);
                assert!(err <= eb + 1e-3, "{cfg:?}: err {err}");
                if backend == Backend::NULL {
                    assert_eq!(err, 0.0, "passthrough must be lossless");
                }
            }
        }
    }

    #[test]
    fn stream_records_and_routes_on_codec_id() {
        let mr = test_mr();
        let eb = 1e6;
        for backend in Backend::ALL {
            let (bytes, _) = compress_mr(&mr, &MrcConfig::ours_pad(eb).with_backend(backend));
            let c = Container::from_bytes(&bytes).unwrap();
            let id_bytes = c.get(TAG_CODEC).expect("codec id section");
            let id = u32::from_le_bytes(id_bytes.try_into().unwrap());
            assert_eq!(id, backend.id(), "{backend:?}");
            // Streams live under the codec's own tag, not a fixed one.
            assert!(c.get_all(backend.id()).count() > 0);
            // And decompression routes without external configuration.
            assert!(decompress_mr(&bytes).is_ok());
        }
    }

    #[test]
    fn unknown_codec_id_is_a_typed_error() {
        let mr = test_mr();
        let (bytes, _) = compress_mr(&mr, &MrcConfig::ours(1e6));
        let parsed = Container::from_bytes(&bytes).unwrap();
        // Rebuild the container with a bogus codec id and the original head.
        let mut bad = Container::new();
        bad.push(TAG_HEAD, parsed.get(TAG_HEAD).unwrap().to_vec());
        bad.push(TAG_CODEC, tag(b"????").to_le_bytes().to_vec());
        let err = decompress_mr(&bad.to_bytes()).unwrap_err();
        assert!(
            matches!(err, MrcError::Codec(CodecError::UnknownCodec(id)) if id == tag(b"????")),
            "{err:?}"
        );
    }

    #[test]
    fn padding_flag_follows_unit_size() {
        let mr = test_mr(); // units 8 (fine) and 4 (coarse)
        let (_, stats) = compress_mr(&mr, &MrcConfig::ours(1e6));
        assert_eq!(
            stats.padded_levels,
            vec![true, false],
            "pad only when unit > 4"
        );
        let (_, stats) = compress_mr(&mr, &MrcConfig::baseline(1e6));
        assert_eq!(stats.padded_levels, vec![false, false]);
    }

    #[test]
    fn tac_produces_multiple_arrays_on_sparse_levels() {
        let mr = test_mr();
        let (_, tac_stats) = compress_mr(&mr, &MrcConfig::tac(1e6));
        let (_, lin_stats) = compress_mr(&mr, &MrcConfig::baseline(1e6));
        assert_eq!(lin_stats.arrays_per_level, vec![1, 1]);
        assert!(tac_stats.arrays_per_level.iter().sum::<usize>() >= 2);
    }

    #[test]
    fn adaptive_data_roundtrip() {
        let f = synth::warpx_like(hqmr_grid::Dims3::new(16, 16, 128), 4);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let eb = f.range() as f64 * 1e-3;
        let (bytes, _) = compress_mr(&mr, &MrcConfig::ours(eb));
        let back = decompress_mr(&bytes).unwrap();
        assert!(max_block_err(&mr, &back) <= eb + 1e-9);
        // End-to-end: reconstruction of decompressed MR stays close to the
        // reconstruction of the uncompressed MR.
        let r0 = mr.reconstruct(Upsample::Nearest);
        let r1 = back.reconstruct(Upsample::Nearest);
        assert!(hqmr_metrics::max_abs_err(&r0, &r1) <= eb + 1e-9);
    }

    #[test]
    fn padding_wins_on_oscillatory_adaptive_data() {
        // The Fig. 17 regime: on WarpX-like data at a moderate bound, the
        // padded linear merge compresses better than the unpadded baseline
        // (extrapolation across the small dims is very costly on waves), and
        // the reconstruction is at least as accurate.
        let f = synth::warpx_like(hqmr_grid::Dims3::new(32, 32, 256), 4);
        let mr = to_adaptive(&f, &RoiConfig::new(16, 0.5));
        let eb = f.range() as f64 * 8e-3;
        let (bb, base) = compress_mr(&mr, &MrcConfig::baseline(eb));
        let (pb, pad) = compress_mr(&mr, &MrcConfig::ours_pad(eb));
        let rp = |bytes: &[u8]| decompress_mr(bytes).unwrap().reconstruct(Upsample::Nearest);
        let r0 = mr.reconstruct(Upsample::Nearest);
        let psnr_base = hqmr_metrics::psnr(&r0, &rp(&bb));
        let psnr_pad = hqmr_metrics::psnr(&r0, &rp(&pb));
        assert!(
            pad.compressed_bytes <= base.compressed_bytes,
            "pad {} vs base {} bytes",
            pad.compressed_bytes,
            base.compressed_bytes
        );
        assert!(
            psnr_pad >= psnr_base - 0.5,
            "pad {psnr_pad} vs base {psnr_base} dB"
        );
    }

    #[test]
    fn corrupted_stream_rejected() {
        let mr = test_mr();
        let (bytes, _) = compress_mr(&mr, &MrcConfig::ours(1e6));
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n / 3] ^= 0x80;
        assert!(decompress_mr(&bad).is_err());
        assert!(decompress_mr(&bytes[..20]).is_err());
    }

    #[test]
    fn empty_level_handled() {
        let mut mr = test_mr();
        mr.levels[0].blocks.clear();
        let (bytes, stats) = compress_mr(&mr, &MrcConfig::ours(1e6));
        assert_eq!(stats.arrays_per_level[0], 0);
        let back = decompress_mr(&bytes).unwrap();
        assert!(back.levels[0].blocks.is_empty());
        assert_eq!(back.levels[1].blocks.len(), mr.levels[1].blocks.len());
    }

    #[test]
    fn prepare_encode_split_matches_one_shot() {
        let mr = test_mr();
        let cfg = MrcConfig::ours(1e6);
        let prepared = prepare_mr(&mr, &cfg);
        assert_eq!(prepared.len(), mr.levels.len());
        assert!(prepared[0].padded());
        let (bytes_split, _) = encode_prepared(&mr, &prepared, &cfg);
        let (bytes_one, _) = compress_mr(&mr, &cfg);
        assert_eq!(bytes_split, bytes_one);
    }
}
