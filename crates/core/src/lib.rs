//! The paper's workflow (§III): high-quality multi-resolution scientific data
//! reduction and visualization.
//!
//! * [`mrc`] — the backend-generic multi-resolution compression engine:
//!   linear merge + single-layer padding (Improvement 1) and adaptive
//!   per-level error bounds (Improvement 2), with the AMRIC (stack) and TAC
//!   (box) arrangements as selectable baselines — all dispatching through
//!   the [`hqmr_codec::Codec`] trait, so SZ3, SZ2, ZFP and the raw
//!   passthrough are interchangeable backends ([`mrc::Backend`]).
//! * [`post`] — the error-bounded adaptive Bézier post-process (§III-B):
//!   quadratic Bézier smoothing across compression-block boundaries, clamped
//!   to `d ± a·eb`, with the intensity `a` chosen per dimension by sampling +
//!   stochastic gradient descent.
//! * [`uncertainty`] — compression-error sampling, isovalue-conditioned
//!   Gaussian modelling, and probabilistic-marching-cubes integration
//!   (§III-C).
//! * [`insitu`] — the staged output pipeline (pre-process vs. compress+write)
//!   measured in Table IV; snapshots are written as block-indexed
//!   `hqmr-store` containers, so post-hoc readers get level/ROI/progressive
//!   access for free.
//! * [`workflow`] — one-call end-to-end API tying everything together, with
//!   the compressor selected as arrangement × backend
//!   ([`workflow::CompressorChoice`]), a store-backed variant
//!   ([`workflow::run_uniform_workflow_store`]), and a serve-backed variant
//!   ([`workflow::run_uniform_workflow_serve`]) that hands back a
//!   concurrent, chunk-cached query server for many-client traffic.

pub mod insitu;
pub mod mrc;
pub mod post;
pub mod uncertainty;
pub mod workflow;

pub use insitu::{write_snapshot, FrameReport, SalvageReport, StageTimings, TemporalWriter};
pub use mrc::{compress_mr, decompress_mr, Backend, MrStats, MrcConfig, MrcError};
pub use post::{bezier_pass, select_intensity, IntensityChoice, PostConfig};
pub use uncertainty::{
    analyze_feature_recovery, model_near_isovalue, sample_error_pairs, ErrorModel, FeatureRecovery,
};
pub use workflow::{
    run_uniform_workflow, run_uniform_workflow_serve, run_uniform_workflow_store, Arrangement,
    CompressorChoice, ServeWorkflowResult, StoreWorkflowResult, WorkflowConfig, WorkflowError,
    WorkflowResult,
};
