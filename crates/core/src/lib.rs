//! The paper's workflow (§III): high-quality multi-resolution scientific data
//! reduction and visualization.
//!
//! * [`sz3mr`] — SZ3 optimized for multi-resolution data: linear merge +
//!   single-layer padding (Improvement 1) and adaptive per-level error bounds
//!   (Improvement 2), with the AMRIC (stack) and TAC (box) arrangements as
//!   selectable baselines.
//! * [`post`] — the error-bounded adaptive Bézier post-process (§III-B):
//!   quadratic Bézier smoothing across compression-block boundaries, clamped
//!   to `d ± a·eb`, with the intensity `a` chosen per dimension by sampling +
//!   stochastic gradient descent.
//! * [`uncertainty`] — compression-error sampling, isovalue-conditioned
//!   Gaussian modelling, and probabilistic-marching-cubes integration
//!   (§III-C).
//! * [`insitu`] — the staged output pipeline (pre-process vs. compress+write)
//!   measured in Table IV.
//! * [`workflow`] — one-call end-to-end API tying everything together.

pub mod insitu;
pub mod post;
pub mod sz3mr;
pub mod uncertainty;
pub mod workflow;

pub use insitu::{write_snapshot, StageTimings};
pub use post::{bezier_pass, select_intensity, IntensityChoice, PostConfig};
pub use sz3mr::{compress_mr, decompress_mr, MrStats, Sz3MrConfig};
pub use uncertainty::{
    analyze_feature_recovery, model_near_isovalue, sample_error_pairs, ErrorModel,
    FeatureRecovery,
};
pub use workflow::{run_uniform_workflow, WorkflowConfig, WorkflowResult};
