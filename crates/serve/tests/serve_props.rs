//! Differential property suite: every `StoreServer` read is byte-identical
//! to the bare `StoreReader` result — across all 4 codec backends × all 4
//! arrangements × cache budgets 0, tiny (evicting) and unbounded — and the
//! store's own invariants (ROI == crop of full read) survive the cache.

use hqmr_codec::{Codec, NullCodec};
use hqmr_grid::{synth, Dims3};
use hqmr_mr::{to_adaptive, MergeStrategy, MultiResData, PadKind, RoiConfig, Upsample};
use hqmr_serve::{Query, Response, StoreServer, UNBOUNDED};
use hqmr_store::{write_store, StoreConfig, StoreReader};
use hqmr_sz2::Sz2Codec;
use hqmr_sz3::Sz3Codec;
use hqmr_zfp::ZfpCodec;
use std::sync::Arc;

/// Every registered backend, decodable from a store without configuration.
fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Sz3Codec::default()),
        Box::new(Sz2Codec::MULTIRES),
        Box::new(ZfpCodec),
        Box::new(NullCodec),
    ]
}

/// The four unit-block arrangements of the workflow's compressor matrix.
fn all_arrangements() -> [(&'static str, MergeStrategy, Option<PadKind>); 4] {
    [
        ("ours", MergeStrategy::Linear, Some(PadKind::Linear)),
        ("baseline", MergeStrategy::Linear, None),
        ("amric", MergeStrategy::Stack, None),
        ("tac", MergeStrategy::Tac, None),
    ]
}

/// Budgets covering the three regimes: no caching, constant eviction
/// pressure, never evicting.
const BUDGETS: [usize; 3] = [0, 32 * 1024, UNBOUNDED];

fn test_mr(seed: u64) -> MultiResData {
    let f = synth::nyx_like(32, seed);
    to_adaptive(&f, &RoiConfig::new(8, 0.5))
}

fn eb() -> f64 {
    1e6 // nyx-scale values ~1e8
}

/// Exhaustive read-path equivalence over the full backend × arrangement ×
/// budget matrix on one random field per (backend, arrangement) cell.
#[test]
fn server_reads_equal_bare_reader_across_matrix() {
    for (ci, codec) in all_codecs().iter().enumerate() {
        for (ai, (arr, merge, pad)) in all_arrangements().into_iter().enumerate() {
            let mr = test_mr(100 + (ci * 4 + ai) as u64);
            let cfg = StoreConfig {
                eb: eb(),
                merge,
                pad,
                chunk_blocks: 3,
                parity_group: 0,
            };
            let buf = write_store(&mr, &cfg, codec.as_ref());
            let oracle = StoreReader::from_bytes(buf.clone()).unwrap();
            for budget in BUDGETS {
                let ctx = format!("{} × {arr}, budget {budget}", codec.name());
                let server = StoreServer::new(
                    Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
                    budget,
                );
                // Two passes: cold (misses) and warm (hits / evict-churn)
                // must both equal the oracle bit-for-bit.
                for pass in ["cold", "warm"] {
                    for level in 0..oracle.meta().levels.len() {
                        assert_eq!(
                            server.read_level(level).unwrap(),
                            oracle.read_level(level).unwrap(),
                            "read_level {ctx} {pass}"
                        );
                        let d = oracle.meta().levels[level].dims;
                        if d.is_empty() {
                            continue;
                        }
                        let boxes = [
                            ([0, 0, 0], [d.nx, d.ny, d.nz]),
                            (
                                [0, 0, 0],
                                [1.max(d.nx / 2), 1.max(d.ny / 2), 1.max(d.nz / 3)],
                            ),
                            ([d.nx / 3, d.ny / 4, d.nz / 2], [d.nx, d.ny, d.nz]),
                        ];
                        for (lo, hi) in boxes {
                            assert_eq!(
                                server.read_roi(level, lo, hi, -7.0).unwrap(),
                                oracle.read_roi(level, lo, hi, -7.0).unwrap(),
                                "read_roi {ctx} {pass} {lo:?}..{hi:?}"
                            );
                        }
                        for iso in [0.0f32, 1e8, 5e8] {
                            assert_eq!(
                                server.read_level_iso(level, iso).unwrap(),
                                oracle.read_level_iso(level, iso).unwrap(),
                                "read_level_iso {ctx} {pass} iso={iso}"
                            );
                        }
                    }
                    assert_eq!(
                        server.read_all().unwrap(),
                        oracle.read_all().unwrap(),
                        "read_all {ctx} {pass}"
                    );
                }
                // Whatever the budget did, it never overshot.
                let st = server.stats();
                assert!(
                    st.peak_resident_bytes <= budget as u64,
                    "budget exceeded: {ctx}: {} > {budget}",
                    st.peak_resident_bytes
                );
                assert_eq!(st.requests, st.hits + st.misses, "{ctx}");
            }
        }
    }
}

/// ROI == crop of the full read, with the crop coming from the *cached*
/// level read and the ROI from a separately budgeted server (and vice
/// versa) — the store invariant must hold through any cache interleaving.
#[test]
fn roi_equals_crop_through_the_cache() {
    let mr = test_mr(7);
    let buf = write_store(
        &mr,
        &StoreConfig::new(eb()).with_chunk_blocks(2),
        &Sz3Codec::default(),
    );
    for budget in BUDGETS {
        let server = StoreServer::new(
            Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            budget,
        );
        for level in 0..server.meta().levels.len() {
            let full = server.read_level(level).unwrap().to_field(-7.0);
            let d = full.dims();
            let boxes = [
                ([0, 0, 0], [d.nx, d.ny, 1.max(d.nz / 2)]),
                ([d.nx / 4, 0, d.nz / 3], [d.nx, d.ny / 2 + 1, d.nz]),
            ];
            for (lo, hi) in boxes {
                let roi = server.read_roi(level, lo, hi, -7.0).unwrap();
                let crop =
                    full.extract_box(lo, Dims3::new(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]));
                assert_eq!(roi, crop, "L{level} {lo:?}..{hi:?} budget {budget}");
            }
        }
    }
}

/// Progressive refinement through the cache matches the bare reader step by
/// step, and its final step is the full reconstruction, at every budget.
#[test]
fn progressive_through_cache_matches_bare_reader() {
    let mr = test_mr(13);
    let buf = write_store(
        &mr,
        &StoreConfig::new(eb()).with_chunk_blocks(4),
        &NullCodec,
    );
    let oracle = StoreReader::from_bytes(buf.clone()).unwrap();
    for budget in BUDGETS {
        let server = StoreServer::new(
            Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            budget,
        );
        for scheme in [Upsample::Nearest, Upsample::Trilinear] {
            let a: Vec<_> = server
                .progressive(scheme)
                .collect::<Result<_, _>>()
                .unwrap();
            let b: Vec<_> = oracle
                .progressive(scheme)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.level, y.level, "budget {budget}");
                assert_eq!(x.field, y.field, "L{} budget {budget}", x.level);
            }
            let full = oracle.read_all().unwrap().reconstruct(scheme);
            assert_eq!(a.last().unwrap().field, full, "budget {budget}");
        }
    }
}

/// Batched responses equal the corresponding individual reads on the bare
/// reader, at every budget, for a mix of overlapping queries.
#[test]
fn batch_responses_equal_individual_reads() {
    let mr = test_mr(23);
    let buf = write_store(
        &mr,
        &StoreConfig::new(eb()).with_chunk_blocks(2),
        &Sz2Codec::MULTIRES,
    );
    let oracle = StoreReader::from_bytes(buf.clone()).unwrap();
    let d = oracle.meta().levels[0].dims;
    let queries = [
        Query::Level { level: 1 },
        Query::Roi {
            level: 0,
            lo: [0, 0, 0],
            hi: [d.nx, d.ny / 2 + 1, d.nz],
            fill: 3.25,
        },
        Query::Iso { level: 0, iso: 2e8 },
        Query::Roi {
            level: 0,
            lo: [d.nx / 2, d.ny / 4, 0],
            hi: [d.nx, d.ny, d.nz / 2 + 1],
            fill: -1.0,
        },
        Query::Level { level: 0 },
    ];
    for budget in BUDGETS {
        let server = StoreServer::new(
            Arc::new(StoreReader::from_bytes(buf.clone()).unwrap()),
            budget,
        );
        let responses = server.serve_batch(&queries).unwrap();
        assert_eq!(responses.len(), queries.len());
        for (q, r) in queries.iter().zip(&responses) {
            match (q, r) {
                (Query::Level { level }, Response::Level(l)) => {
                    assert_eq!(*l, oracle.read_level(*level).unwrap(), "budget {budget}")
                }
                (
                    Query::Roi {
                        level,
                        lo,
                        hi,
                        fill,
                    },
                    Response::Roi(f),
                ) => assert_eq!(
                    *f,
                    oracle.read_roi(*level, *lo, *hi, *fill).unwrap(),
                    "budget {budget}"
                ),
                (Query::Iso { level, iso }, Response::Iso(l)) => {
                    assert_eq!(
                        *l,
                        oracle.read_level_iso(*level, *iso).unwrap(),
                        "budget {budget}"
                    )
                }
                (q, r) => panic!("response kind mismatch: {q:?} -> {r:?}"),
            }
        }
        // The planner unions overlapping queries: the decode count for the
        // whole batch is the union size, not the per-query sum.
        let st = server.stats();
        let union = server.plan(&queries).unwrap().len() as u64;
        assert_eq!(st.misses, union, "budget {budget}");
    }
}

/// Corruption surfaces through the server with the same typed error as the
/// bare reader, and other chunks stay servable.
#[test]
fn corruption_is_typed_through_the_cache() {
    let mr = test_mr(31);
    let buf = write_store(
        &mr,
        &StoreConfig::new(eb()).with_chunk_blocks(2),
        &NullCodec,
    );
    let reader = StoreReader::from_bytes(buf.clone()).unwrap();
    let meta = reader.meta().clone();
    let data_start = buf.len() - meta.compressed_bytes() as usize;
    let victim = meta.levels[0].chunks.len() / 2;
    let c = &meta.levels[0].chunks[victim];
    let mut bad = buf;
    bad[data_start + c.offset as usize + c.len / 2] ^= 0xFF;
    let server = StoreServer::unbounded(Arc::new(StoreReader::from_bytes(bad).unwrap()));
    let err = server.read_level(0).expect_err("chunk CRC must trip");
    assert!(
        matches!(err, hqmr_store::StoreError::CorruptChunk { level: 0, block } if block == victim),
        "{err:?}"
    );
    // Failed decodes are never cached; retrying re-fails with the same type.
    let err = server.read_level(0).expect_err("still corrupt");
    assert!(matches!(err, hqmr_store::StoreError::CorruptChunk { .. }));
    // The coarse level is untouched and fully servable.
    assert_eq!(
        server.read_level(1).unwrap(),
        StoreReader::from_bytes(write_store(
            &mr,
            &StoreConfig::new(eb()).with_chunk_blocks(2),
            &NullCodec
        ))
        .unwrap()
        .read_level(1)
        .unwrap()
    );
}
