//! Multi-threaded stress: many client threads hammer one shared
//! `StoreServer` with randomized interleaved ROI / isovalue / level /
//! progressive queries. Every result must match a single-threaded oracle
//! (the bare `StoreReader`), the cache byte budget must never be exceeded —
//! not even transiently, which `peak_resident_bytes` witnesses — and the
//! `CacheStats` ledger must stay consistent (`hits + misses == requests`).
//!
//! CI runs this file twice: in the debug tier-1 suite and as a dedicated
//! `cargo test --release -p hqmr-serve` job, where the tighter timings make
//! interleavings far more adversarial.

use hqmr_grid::synth;
use hqmr_mr::{to_adaptive, RoiConfig, Upsample};
use hqmr_serve::{StoreServer, UNBOUNDED};
use hqmr_store::{write_store, StoreConfig, StoreReader};
use hqmr_sz3::Sz3Codec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 24;

fn build_store(seed: u64) -> Vec<u8> {
    let f = synth::nyx_like(32, seed);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    write_store(
        &mr,
        &StoreConfig::new(1e6).with_chunk_blocks(2),
        &Sz3Codec::default(),
    )
}

/// One randomized client op, checked against the oracle in place.
fn run_op(server: &StoreServer, oracle: &StoreReader, rng: &mut StdRng, tag: &str) {
    let n_levels = server.meta().levels.len();
    match rng.gen_range(0u32..10) {
        // ROI reads dominate, like real viewer traffic.
        0..=4 => {
            let level = rng.gen_range(0..n_levels);
            let d = server.meta().levels[level].dims;
            let lo = [
                rng.gen_range(0..d.nx),
                rng.gen_range(0..d.ny),
                rng.gen_range(0..d.nz),
            ];
            let hi = [
                rng.gen_range(lo[0]..d.nx) + 1,
                rng.gen_range(lo[1]..d.ny) + 1,
                rng.gen_range(lo[2]..d.nz) + 1,
            ];
            assert_eq!(
                server.read_roi(level, lo, hi, 0.5).unwrap(),
                oracle.read_roi(level, lo, hi, 0.5).unwrap(),
                "{tag}: roi L{level} {lo:?}..{hi:?}"
            );
        }
        5..=6 => {
            let level = rng.gen_range(0..n_levels);
            let iso = rng.gen_range(0.0f32..6e8);
            assert_eq!(
                server.read_level_iso(level, iso).unwrap(),
                oracle.read_level_iso(level, iso).unwrap(),
                "{tag}: iso L{level} {iso}"
            );
        }
        7..=8 => {
            let level = rng.gen_range(0..n_levels);
            assert_eq!(
                server.read_level(level).unwrap(),
                oracle.read_level(level).unwrap(),
                "{tag}: level {level}"
            );
        }
        _ => {
            let steps: Vec<_> = server
                .progressive(Upsample::Nearest)
                .collect::<Result<_, _>>()
                .unwrap();
            let expect: Vec<_> = oracle
                .progressive(Upsample::Nearest)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(steps.len(), expect.len(), "{tag}: progressive");
            for (a, b) in steps.iter().zip(&expect) {
                assert_eq!(a.field, b.field, "{tag}: progressive L{}", a.level);
            }
        }
    }
}

/// The stress proper, exercised at an evicting budget and at unbounded.
fn stress_at_budget(budget: usize, seed: u64) {
    let buf = build_store(seed);
    let oracle = StoreReader::from_bytes(buf.clone()).unwrap();
    let server = StoreServer::new(Arc::new(StoreReader::from_bytes(buf).unwrap()), budget);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (server, oracle, barrier) = (&server, &oracle, &barrier);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed * 1000 + t as u64);
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    run_op(server, oracle, &mut rng, &format!("t{t} op{i}"));
                }
            });
        }
    });
    let st = server.stats();
    assert_eq!(
        st.requests,
        st.hits + st.misses,
        "ledger must balance: {st:?}"
    );
    assert!(st.shared <= st.hits, "shared waits are a subset of hits");
    assert!(
        st.peak_resident_bytes <= budget as u64,
        "budget exceeded: {} > {budget}",
        st.peak_resident_bytes
    );
    assert!(st.requests > 0);
    if budget == UNBOUNDED {
        // Never-evicting cache: at most one decode per chunk in the store.
        assert_eq!(st.evictions, 0);
        assert!(st.misses <= server.meta().chunk_count() as u64);
    } else {
        // The evicting budget is small enough that the workload must churn.
        assert!(st.evictions > 0, "expected evictions at budget {budget}");
    }
}

#[test]
fn concurrent_clients_match_oracle_with_evicting_budget() {
    // The whole decoded store is ~72 KiB at this scale, so 32 KiB keeps the
    // cache under constant replacement pressure.
    stress_at_budget(32 * 1024, 51);
}

#[test]
fn concurrent_clients_match_oracle_with_unbounded_budget() {
    stress_at_budget(UNBOUNDED, 52);
}

/// All clients storm the same cold chunk simultaneously: single-flight must
/// collapse the decodes to exactly one, with everyone else hitting the
/// shared result.
#[test]
fn single_flight_collapses_identical_cold_requests() {
    let buf = build_store(53);
    let server = StoreServer::unbounded(Arc::new(StoreReader::from_bytes(buf).unwrap()));
    let d = server.meta().levels[0].dims;
    let clients = 12;
    let barrier = Barrier::new(clients);
    std::thread::scope(|s| {
        for _ in 0..clients {
            let (server, barrier) = (&server, &barrier);
            s.spawn(move || {
                barrier.wait();
                server
                    .read_roi(0, [0, 0, 0], [d.nx.min(8), d.ny.min(8), d.nz.min(8)], 0.0)
                    .unwrap();
            });
        }
    });
    let st = server.stats();
    let union = server
        .reader()
        .roi_chunk_indices(0, [0, 0, 0], [d.nx.min(8), d.ny.min(8), d.nz.min(8)])
        .unwrap()
        .len() as u64;
    assert_eq!(
        st.misses, union,
        "each needed chunk decodes exactly once across {clients} clients: {st:?}"
    );
    assert_eq!(st.requests, union * clients as u64);
    assert_eq!(st.hits, union * (clients as u64 - 1));
    // The reader's byte ledger agrees: compressed bytes were paid once.
    let once: u64 = {
        let lm = &server.meta().levels[0];
        server
            .reader()
            .roi_chunk_indices(0, [0, 0, 0], [d.nx.min(8), d.ny.min(8), d.nz.min(8)])
            .unwrap()
            .iter()
            .map(|&i| lm.chunks[i].len as u64)
            .sum()
    };
    assert_eq!(server.reader().bytes_decoded(), once);
}

/// Interleaved batched and direct queries across threads stay consistent:
/// every batch response equals the oracle, under eviction pressure.
#[test]
fn concurrent_batches_match_oracle() {
    use hqmr_serve::{Query, Response};
    let buf = build_store(54);
    let oracle = StoreReader::from_bytes(buf.clone()).unwrap();
    let server = StoreServer::new(Arc::new(StoreReader::from_bytes(buf).unwrap()), 128 * 1024);
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..6 {
            let (server, oracle, errors) = (&server, &oracle, &errors);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(5400 + t);
                for _ in 0..8 {
                    let d = server.meta().levels[0].dims;
                    let lo = [
                        rng.gen_range(0..d.nx / 2),
                        rng.gen_range(0..d.ny / 2),
                        rng.gen_range(0..d.nz / 2),
                    ];
                    let hi = [
                        rng.gen_range(lo[0] + 1..=d.nx),
                        rng.gen_range(lo[1] + 1..=d.ny),
                        rng.gen_range(lo[2] + 1..=d.nz),
                    ];
                    let queries = [
                        Query::Roi {
                            level: 0,
                            lo,
                            hi,
                            fill: 0.0,
                        },
                        Query::Iso {
                            level: 0,
                            iso: rng.gen_range(0.0f32..6e8),
                        },
                        Query::Level { level: 1 },
                    ];
                    let responses = server.serve_batch(&queries).unwrap();
                    let ok = match (&responses[0], &responses[1], &responses[2]) {
                        (Response::Roi(f), Response::Iso(i), Response::Level(l)) => {
                            let Query::Iso { iso, .. } = queries[1] else {
                                unreachable!()
                            };
                            *f == oracle.read_roi(0, lo, hi, 0.0).unwrap()
                                && *i == oracle.read_level_iso(0, iso).unwrap()
                                && *l == oracle.read_level(1).unwrap()
                        }
                        _ => false,
                    };
                    if !ok {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    let st = server.stats();
    assert_eq!(st.requests, st.hits + st.misses);
    assert!(st.peak_resident_bytes <= 128 * 1024);
}
