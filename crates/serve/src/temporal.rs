//! Serving layer over a temporal (`HQTM`) store: the same byte-budgeted
//! LRU + single-flight machinery as [`StoreServer`](crate::StoreServer),
//! keyed by `(time, level, chunk)` so hot frames of a series share one
//! cache.
//!
//! The cache covers *actual-value* chunks. A delta chunk's decode recurses —
//! through the cache — into `(t−1, level, chunk)` before applying the
//! residual, so a chain is walked at most once however many clients ask for
//! its tip: intermediate frames land in the cache as a side effect and are
//! themselves servable. Recursion is deadlock-free by construction: the
//! decode closure runs outside every cache lock and only ever requests a
//! strictly smaller time index.

use crate::cache::ChunkCache;
use crate::{CacheStats, FaultHook, Query, Response, UNBOUNDED};
use hqmr_grid::Field3;
use hqmr_mr::{LevelData, MultiResData, Upsample};
use hqmr_store::read::{self, ChunkSource};
use hqmr_store::temporal::{apply_residual, TemporalReader, TimeKey};
use hqmr_store::{
    temporal_sidecars, DecodedChunk, ParitySidecar, Progressive, StoreError, StoreMeta,
};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

// Same compile-time contract as the single-store server: shared across
// client threads by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TemporalServer>();
};

/// One request of a temporal batch: a [`Query`] pinned to a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeQuery {
    /// Frame index the query reads.
    pub time: usize,
    /// The spatial query within that frame.
    pub query: Query,
}

/// A `Send + Sync` serving layer over one shared [`TemporalReader`].
///
/// Every read returns actual values — delta chains are resolved internally —
/// and is byte-identical to the bare reader's equivalent at every cache
/// budget (pinned by the differential suite in `tests/`).
pub struct TemporalServer {
    reader: Arc<TemporalReader>,
    cache: ChunkCache<TimeKey>,
    fault_hook: Option<FaultHook>,
    /// Per-frame parity sidecars for online repair (`parity[t]` pairs with
    /// frame `t`); empty when repair is unarmed. `None` entries are frames
    /// whose sidecar was absent or damaged — those frames degrade as before.
    parity: Vec<Option<ParitySidecar>>,
}

impl TemporalServer {
    /// Wraps `reader` with a decoded-chunk cache of at most `cache_budget`
    /// bytes. Budget `0` disables caching (reads stay correct, single-flight
    /// still deduplicates — but note a cold delta read then re-walks its
    /// chain); [`UNBOUNDED`] never evicts.
    pub fn new(reader: Arc<TemporalReader>, cache_budget: usize) -> Self {
        TemporalServer {
            reader,
            cache: ChunkCache::new(cache_budget),
            fault_hook: None,
            parity: Vec::new(),
        }
    }

    /// Installs a [`FaultHook`] consulted before every *stored-chunk*
    /// decode (builder form) — the chaos injection point, firing at the
    /// same layer real at-rest rot does: a delta chunk's fault surfaces
    /// while walking any chain through it. Chunks already resident
    /// (including repaired ones) are served without re-rolling the fault.
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Arms online repair with one optional parity sidecar per frame
    /// (builder form). Fails with [`StoreError::SidecarMismatch`] if a
    /// provided sidecar does not describe its frame, or
    /// [`StoreError::Malformed`] if the count differs from the frame count.
    pub fn with_parity(mut self, sidecars: Vec<Option<ParitySidecar>>) -> Result<Self, StoreError> {
        if sidecars.len() != self.reader.frame_count() {
            return Err(StoreError::Malformed("one parity slot per frame"));
        }
        for (t, sc) in sidecars.iter().enumerate() {
            if let Some(sc) = sc {
                if !sc.matches(self.reader.frame_reader(t)?.meta()) {
                    return Err(StoreError::SidecarMismatch);
                }
            }
        }
        self.parity = sidecars;
        Ok(self)
    }

    /// Arms online repair from the `.hqpr` files next to the store's frame
    /// files, tolerating absent or damaged sidecars per frame (those frames
    /// simply stay unprotected).
    pub fn with_disk_parity(self) -> Result<Self, StoreError> {
        let sidecars = temporal_sidecars(self.reader.dir(), self.reader.manifest());
        self.with_parity(sidecars)
    }

    /// Whether any frame has online parity repair armed.
    pub fn has_parity(&self) -> bool {
        self.parity.iter().any(Option::is_some)
    }

    /// [`TemporalServer::new`] with an unbounded budget.
    pub fn unbounded(reader: Arc<TemporalReader>) -> Self {
        Self::new(reader, UNBOUNDED)
    }

    /// The wrapped reader.
    pub fn reader(&self) -> &TemporalReader {
        &self.reader
    }

    /// Number of frames served.
    pub fn frame_count(&self) -> usize {
        self.reader.frame_count()
    }

    /// Snapshot of the cache counters (see
    /// [`StoreServer::stats`](crate::StoreServer::stats) for the ledger
    /// identities, which hold unchanged here).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot-and-reset of the counter window.
    pub fn take_stats(&self) -> CacheStats {
        self.cache.take_stats()
    }

    /// Zeroes the counters; resident chunks are kept.
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
    }

    /// Drops every resident chunk; counters are kept.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The actual-value chunk `(t, level, block)`, through the cache.
    fn chunk_at(&self, t: usize, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.cache
            .get_or_decode((t, level, block), || self.decode_actual(t, level, block))
    }

    /// Cache-miss path: decode the chunk's stored stream; for a delta chunk
    /// first obtain `(t−1, level, block)` — through the cache again — and
    /// apply the residual.
    fn decode_actual(
        &self,
        t: usize,
        level: usize,
        block: usize,
    ) -> Result<DecodedChunk, StoreError> {
        let stored = self.decode_stored(t, level, block)?;
        if !self.reader.manifest().frames[t].is_delta(level, block) {
            return Ok(stored);
        }
        if t == 0 {
            // `TemporalReader::open` rejects this shape; belt and braces.
            return Err(StoreError::Malformed("delta chain has no keyframe root"));
        }
        let prev = self.chunk_at(t - 1, level, block)?;
        apply_residual(&prev, &stored)
    }

    /// Decodes frame `t`'s *stored* chunk stream (residual for delta
    /// chunks), consulting the fault hook and — on a corrupt or undecodable
    /// chunk — frame `t`'s parity sidecar. Mirrors
    /// [`StoreServer::try_repair`](crate::StoreServer): a reconstruction is
    /// CRC-verified bit-exact and flows on through the normal chain logic
    /// (and into the LRU); a failed one propagates the original typed error.
    fn decode_stored(
        &self,
        t: usize,
        level: usize,
        block: usize,
    ) -> Result<DecodedChunk, StoreError> {
        let fr = self.reader.frame_reader(t)?;
        let faulted = self
            .fault_hook
            .as_ref()
            .is_some_and(|hook| hook(level, block));
        let res = if faulted {
            Err(StoreError::CorruptChunk { level, block })
        } else {
            fr.decode_chunk(level, block)
        };
        match res {
            Err(original @ (StoreError::CorruptChunk { .. } | StoreError::Codec { .. })) => {
                let Some(Some(parity)) = self.parity.get(t) else {
                    return Err(original);
                };
                match parity
                    .reconstruct(fr, level, block)
                    .and_then(|bytes| fr.decode_chunk_bytes(level, block, &bytes))
                {
                    Ok(chunk) => {
                        self.cache.note_repair();
                        Ok(chunk)
                    }
                    Err(_) => {
                        self.cache.note_repair_failure();
                        Err(original)
                    }
                }
            }
            other => other,
        }
    }

    /// A [`ChunkSource`] view of frame `t` whose chunks come through the
    /// server's cache — level/ROI/iso/progressive reads per frame.
    pub fn frame(&self, t: usize) -> Result<TimeView<'_>, StoreError> {
        self.reader.frame_reader(t)?; // validates t
        Ok(TimeView { server: self, t })
    }

    /// Reads one whole level of frame `t` through the cache.
    pub fn read_level(&self, t: usize, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(&self.frame(t)?, level)
    }

    /// Reads every level of frame `t` through the cache.
    pub fn read_frame(&self, t: usize) -> Result<MultiResData, StoreError> {
        read::read_all(&self.frame(t)?)
    }

    /// Reads the box `[lo, hi)` of one level at time `t` through the cache.
    pub fn read_roi(
        &self,
        t: usize,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(&self.frame(t)?, level, lo, hi, fill)
    }

    /// Time-windowed ROI through the cache: one field per frame of
    /// `t0..=t1`. Equal to per-frame [`TemporalServer::read_roi`] calls;
    /// chain work is shared through the `(time, level, chunk)` cache.
    pub fn read_roi_window(
        &self,
        t0: usize,
        t1: usize,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Vec<Field3>, StoreError> {
        if t1 >= self.reader.frame_count() || t0 > t1 {
            return Err(StoreError::NoSuchFrame(t1));
        }
        (t0..=t1)
            .map(|t| self.read_roi(t, level, lo, hi, fill))
            .collect()
    }

    /// The `(time, level, chunk)` keys one query needs — chunk-table
    /// accounting only, no decoding. A delta chunk's chain predecessors are
    /// *not* planned here; they are resolved (and cached) during decode.
    fn query_keys(&self, q: &TimeQuery) -> Result<Vec<TimeKey>, StoreError> {
        let meta = self.reader.frame_reader(q.time)?.meta();
        let t = q.time;
        Ok(match q.query {
            Query::Level { level } => {
                let lm = meta
                    .levels
                    .get(level)
                    .ok_or(StoreError::NoSuchLevel(level))?;
                (0..lm.chunks.len()).map(|i| (t, level, i)).collect()
            }
            Query::Roi { level, lo, hi, .. } => read::roi_chunk_indices(meta, level, lo, hi)?
                .into_iter()
                .map(|i| (t, level, i))
                .collect(),
            Query::Iso { level, iso } => read::iso_chunk_indices(meta, level, iso)?
                .into_iter()
                .map(|i| (t, level, i))
                .collect(),
        })
    }

    /// The set of `(time, level, chunk)` keys a batch needs — the union
    /// across requests, each chunk exactly once.
    pub fn plan(&self, queries: &[TimeQuery]) -> Result<BTreeSet<TimeKey>, StoreError> {
        let mut need = BTreeSet::new();
        for q in queries {
            need.extend(self.query_keys(q)?);
        }
        Ok(need)
    }

    /// Serves a batch of time-pinned queries: plans the union of needed
    /// chunks across all frames, decodes the misses in parallel (delta
    /// chains resolve through the shared cache, so two queries at adjacent
    /// times share the prefix work), then assembles every response from the
    /// batch's decoded set. Responses are in request order and
    /// byte-identical to issuing each query alone.
    pub fn serve_batch(&self, queries: &[TimeQuery]) -> Result<Vec<Response>, StoreError> {
        let keys: Vec<TimeKey> = self.plan(queries)?.into_iter().collect();
        let fetched: Vec<Result<DecodedChunk, StoreError>> = keys
            .par_iter()
            .map(|&(t, level, block)| self.chunk_at(t, level, block))
            .collect();
        let mut chunks: HashMap<TimeKey, DecodedChunk> = HashMap::with_capacity(keys.len());
        for (key, res) in keys.into_iter().zip(fetched) {
            chunks.insert(key, res?);
        }
        let chunks = &chunks;
        queries
            .iter()
            .map(|q| {
                let view = TimeBatchView {
                    server: self,
                    t: q.time,
                    chunks,
                };
                match q.query {
                    Query::Level { level } => read::read_level(&view, level).map(Response::Level),
                    Query::Roi {
                        level,
                        lo,
                        hi,
                        fill,
                    } => read::read_roi(&view, level, lo, hi, fill).map(Response::Roi),
                    Query::Iso { level, iso } => {
                        read::read_level_iso(&view, level, iso).map(Response::Iso)
                    }
                }
            })
            .collect()
    }
}

/// One frame of a [`TemporalServer`] as a [`ChunkSource`]: all reads go
/// through the server's `(time, level, chunk)` cache.
pub struct TimeView<'a> {
    server: &'a TemporalServer,
    t: usize,
}

impl TimeView<'_> {
    /// The frame's time index.
    pub fn time(&self) -> usize {
        self.t
    }

    /// Coarse→fine progressive refinement of this frame through the cache —
    /// temporal progressive: each step resolves the next finer level's
    /// delta chains, reusing whatever chain prefixes other clients already
    /// paid for.
    pub fn progressive(&self, scheme: Upsample) -> Progressive<'_, Self> {
        read::progressive(self, scheme)
    }
}

impl ChunkSource for TimeView<'_> {
    fn store_meta(&self) -> &StoreMeta {
        self.server
            .reader
            .frame_reader(self.t)
            .expect("TimeView time index validated at construction")
            .meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.server.chunk_at(self.t, level, block)
    }
}

/// Batch assembly view pinned to one query's frame: chunks come from the
/// batch's pre-fetched set, so responses are immune to concurrent evictions
/// (budget 0 included). Chain predecessors outside the plan were already
/// folded into the actual-value chunks during the fetch.
struct TimeBatchView<'a> {
    server: &'a TemporalServer,
    t: usize,
    chunks: &'a HashMap<TimeKey, DecodedChunk>,
}

impl ChunkSource for TimeBatchView<'_> {
    fn store_meta(&self) -> &StoreMeta {
        self.server
            .reader
            .frame_reader(self.t)
            .expect("batch queries validated during planning")
            .meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        match self.chunks.get(&(self.t, level, block)) {
            Some(c) => Ok(c.clone()),
            // A key outside the plan (cannot happen for the queries that
            // produced the plan): fall through to the cache.
            None => self.server.chunk_at(self.t, level, block),
        }
    }
}
