//! `hqmr-serve` — the concurrent serving layer over a block-indexed store.
//!
//! A [`StoreReader`] gives random access to a compressed multi-resolution
//! container, but every query re-fetches and re-decodes its chunks from
//! scratch. Interactive visualization traffic does the opposite of touching
//! each chunk once: many clients pan and zoom over the *same* hot regions,
//! and a chunk decoded for one ROI is needed again milliseconds later by the
//! next. [`StoreServer`] is the layer in between — a `Send + Sync` server
//! wrapping an `Arc<StoreReader>` with:
//!
//! * a **decoded-chunk LRU cache** keyed by `(level, chunk)` under a
//!   configurable byte budget — chunk payloads are shared `Arc<[f32]>`
//!   slabs, so a cache hit is a refcount bump, not a copy;
//! * **single-flight decode**: concurrent requests for the same non-resident
//!   chunk decode it once; the first requester runs the codec while the rest
//!   wait on the shared flight and clone its result;
//! * a **batched query planner** ([`StoreServer::serve_batch`]): a set of
//!   level/ROI/isovalue requests is planned as the *union* of needed chunks,
//!   misses decode in parallel through the rayon shim, and every response is
//!   assembled from the shared decoded set — overlapping requests in one
//!   batch never decode a chunk twice, whatever the cache budget;
//! * [`CacheStats`] — hits / misses / shared waits / evictions / resident
//!   bytes, alongside the reader's existing `bytes_decoded` accounting.
//!
//! Every read method returns results byte-identical to the bare
//! [`StoreReader`]: both funnel through the provider-generic assembly in
//! [`hqmr_store::read`], and the differential property suite in
//! `tests/serve_props.rs` pins the equivalence across every backend,
//! arrangement and budget (including 0 and unbounded).

mod cache;

pub use cache::CacheStats;

use cache::Key;
use hqmr_grid::Field3;
use hqmr_mr::{LevelData, MultiResData, Upsample};
use hqmr_store::read::{self, ChunkSource};
use hqmr_store::{DecodedChunk, Progressive, StoreError, StoreMeta, StoreReader};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

// Compile-time thread-safety contract: the whole point of the server is to
// be shared across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoreServer>();
    assert_send_sync::<CacheStats>();
};

/// Cache budget meaning "never evict" ([`StoreServer::unbounded`]).
pub const UNBOUNDED: usize = usize::MAX;

/// Carves one global decoded-chunk byte budget into per-tenant budgets,
/// proportionally to `weights` (e.g. each tenant's compressed store size or
/// expected traffic share). Guarantees:
///
/// * the per-tenant budgets sum to exactly `total` (largest-remainder
///   rounding), so a fleet of [`StoreServer`]s provisioned from one global
///   budget can never collectively exceed it;
/// * a tenant with nonzero weight gets a nonzero budget whenever
///   `total >= weights.len()`, so no live tenant is starved to cache-off;
/// * [`UNBOUNDED`] passes through: every tenant is unbounded.
///
/// Zero weights (idle tenants) receive zero budget. An empty weight slice
/// returns an empty vec.
pub fn partition_budget(total: usize, weights: &[u64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    if total == UNBOUNDED {
        return vec![UNBOUNDED; weights.len()];
    }
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if sum == 0 {
        // No information: split evenly, remainder to the front.
        let base = total / weights.len();
        let mut rem = total % weights.len();
        return weights
            .iter()
            .map(|_| {
                let extra = usize::from(rem > 0);
                rem -= extra;
                base + extra
            })
            .collect();
    }
    // Largest-remainder apportionment over floor(total * w / sum).
    let mut out: Vec<usize> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: usize = 0;
    for (i, &w) in weights.iter().enumerate() {
        let prod = total as u128 * w as u128;
        let share = (prod / sum) as usize;
        fracs.push((prod % sum, i));
        out.push(share);
        assigned += share;
    }
    fracs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in fracs.iter().take(total - assigned) {
        out[i] += 1;
    }
    // Nonzero-weight tenants must not be starved when there is budget to
    // hand out: steal single bytes from the largest allocations.
    if total >= weights.len() {
        while let Some(starved) = (0..out.len()).find(|&i| weights[i] > 0 && out[i] == 0) {
            let richest = (0..out.len()).max_by_key(|&i| out[i]).expect("nonempty");
            debug_assert!(out[richest] > 1);
            out[richest] -= 1;
            out[starved] += 1;
        }
    }
    out
}

/// One client request in a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// One whole resolution level.
    Level {
        /// Level index (refinement distance, 0 = finest).
        level: usize,
    },
    /// An axis-aligned box `[lo, hi)` of one level, uncovered cells filled
    /// with `fill`.
    Roi {
        /// Level index.
        level: usize,
        /// Low corner, level cell coordinates.
        lo: [usize; 3],
        /// High corner (exclusive).
        hi: [usize; 3],
        /// Fill value for cells no unit block covers.
        fill: f32,
    },
    /// One level under isovalue chunk-skipping.
    Iso {
        /// Level index.
        level: usize,
        /// The isovalue.
        iso: f32,
    },
}

/// The response to one [`Query`], same order as the request slice.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Level`].
    Level(LevelData),
    /// Answer to [`Query::Roi`].
    Roi(Field3),
    /// Answer to [`Query::Iso`].
    Iso(LevelData),
}

/// A `Send + Sync` serving layer over one shared [`StoreReader`].
///
/// All methods take `&self`; clone the `Arc<StoreServer>` (or borrow across
/// `std::thread::scope`) into as many client threads as needed. Results are
/// byte-identical to the bare reader's at every cache budget.
pub struct StoreServer {
    reader: Arc<StoreReader>,
    cache: cache::ChunkCache,
}

impl StoreServer {
    /// Wraps `reader` with a decoded-chunk cache of at most `cache_budget`
    /// bytes (decoded payload footprint). A budget of `0` disables caching
    /// entirely — reads stay correct and single-flight still deduplicates
    /// concurrent decodes; [`UNBOUNDED`] never evicts.
    pub fn new(reader: Arc<StoreReader>, cache_budget: usize) -> Self {
        StoreServer {
            reader,
            cache: cache::ChunkCache::new(cache_budget),
        }
    }

    /// [`StoreServer::new`] with an unbounded budget.
    pub fn unbounded(reader: Arc<StoreReader>) -> Self {
        Self::new(reader, UNBOUNDED)
    }

    /// The wrapped reader (e.g. for its `bytes_decoded` accounting).
    pub fn reader(&self) -> &StoreReader {
        &self.reader
    }

    /// The store's directory.
    pub fn meta(&self) -> &StoreMeta {
        self.reader.meta()
    }

    /// Snapshot of the cache counters. The snapshot is atomically
    /// consistent with respect to the ledger identity: `requests` is
    /// derived as `hits + misses` at read time, so the identity holds even
    /// when other client threads have lookups mid-flight — an exporter
    /// never has to quiesce traffic to publish balanced stats.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot-and-reset in one step: returns the counter window
    /// accumulated since the last reset and starts a fresh one, losing no
    /// concurrent increment (each lands in exactly one window). The
    /// per-tenant stats export of the network serving layer drives this.
    pub fn take_stats(&self) -> CacheStats {
        self.cache.take_stats()
    }

    /// Zeroes the cache counters and restarts the high-water mark from the
    /// current residency; resident chunks are kept.
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
    }

    /// Drops every resident chunk (a cold cache without rebuilding the
    /// server). Counters are kept.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Reads one whole resolution level through the cache.
    pub fn read_level(&self, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(self, level)
    }

    /// Reads every level through the cache.
    pub fn read_all(&self) -> Result<MultiResData, StoreError> {
        read::read_all(self)
    }

    /// Reads the axis-aligned box `[lo, hi)` of one level through the cache;
    /// equals [`StoreReader::read_roi`] byte-for-byte.
    pub fn read_roi(
        &self,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(self, level, lo, hi, fill)
    }

    /// Reads one level under isovalue chunk-skipping through the cache;
    /// equals [`StoreReader::read_level_iso`] byte-for-byte.
    pub fn read_level_iso(&self, level: usize, iso: f32) -> Result<LevelData, StoreError> {
        read::read_level_iso(self, level, iso)
    }

    /// Coarse→fine progressive refinement through the cache.
    pub fn progressive(&self, scheme: Upsample) -> Progressive<'_, Self> {
        read::progressive(self, scheme)
    }

    /// The set of `(level, chunk)` pairs a batch of queries needs — the
    /// union across requests, each chunk exactly once.
    pub fn plan(&self, queries: &[Query]) -> Result<BTreeSet<(usize, usize)>, StoreError> {
        let meta = self.meta();
        let mut need: BTreeSet<Key> = BTreeSet::new();
        for q in queries {
            match *q {
                Query::Level { level } => {
                    let lm = meta
                        .levels
                        .get(level)
                        .ok_or(StoreError::NoSuchLevel(level))?;
                    need.extend((0..lm.chunks.len()).map(|i| (level, i)));
                }
                Query::Roi { level, lo, hi, .. } => {
                    need.extend(
                        read::roi_chunk_indices(meta, level, lo, hi)?
                            .into_iter()
                            .map(|i| (level, i)),
                    );
                }
                Query::Iso { level, iso } => {
                    need.extend(
                        read::iso_chunk_indices(meta, level, iso)?
                            .into_iter()
                            .map(|i| (level, i)),
                    );
                }
            }
        }
        Ok(need)
    }

    /// Serves a batch of queries: plans the union of needed chunks, decodes
    /// the misses in parallel (each through single-flight, so a concurrent
    /// batch on another thread still shares the work), then assembles every
    /// response from the shared decoded set. Overlapping queries in one
    /// batch touch each chunk once even at cache budget 0. Responses are in
    /// request order and byte-identical to issuing each query alone.
    pub fn serve_batch(&self, queries: &[Query]) -> Result<Vec<Response>, StoreError> {
        let keys: Vec<Key> = self.plan(queries)?.into_iter().collect();
        let fetched: Vec<Result<DecodedChunk, StoreError>> = keys
            .par_iter()
            .map(|&(level, block)| self.chunk(level, block))
            .collect();
        let mut chunks: HashMap<Key, DecodedChunk> = HashMap::with_capacity(keys.len());
        for (key, res) in keys.into_iter().zip(fetched) {
            chunks.insert(key, res?);
        }
        // Assembly pulls from the batch's own decoded set, so the responses
        // are immune to evictions happening underneath (budget 0 included).
        let view = BatchView {
            server: self,
            chunks,
        };
        queries
            .iter()
            .map(|q| match *q {
                Query::Level { level } => read::read_level(&view, level).map(Response::Level),
                Query::Roi {
                    level,
                    lo,
                    hi,
                    fill,
                } => read::read_roi(&view, level, lo, hi, fill).map(Response::Roi),
                Query::Iso { level, iso } => {
                    read::read_level_iso(&view, level, iso).map(Response::Iso)
                }
            })
            .collect()
    }
}

impl ChunkSource for StoreServer {
    fn store_meta(&self) -> &StoreMeta {
        self.reader.meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.cache.get_or_decode(&self.reader, level, block)
    }

    /// Bulk override: one lock acquisition harvests every resident chunk,
    /// then only the misses go through the (parallel) single-flight decode
    /// path — a warm read never pays per-chunk locking or thread fan-out.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        let mut out = self.cache.get_resident(level, indices);
        let missing: Vec<(usize, usize)> = out
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(pos, _)| (pos, indices[pos]))
            .collect();
        if missing.is_empty() {
            return Ok(out.into_iter().map(|c| c.expect("all resident")).collect());
        }
        let decoded: Vec<Result<DecodedChunk, StoreError>> = missing
            .par_iter()
            .map(|&(_, block)| self.chunk(level, block))
            .collect();
        for ((pos, _), res) in missing.into_iter().zip(decoded) {
            out[pos] = Some(res?);
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("misses just filled"))
            .collect())
    }
}

/// One batch's decoded chunk set, viewed as a [`ChunkSource`] for assembly.
/// Falls back to the server for anything outside the plan (which only
/// happens if a query slips past [`StoreServer::plan`] — correctness never
/// depends on the plan being complete).
struct BatchView<'a> {
    server: &'a StoreServer,
    chunks: HashMap<Key, DecodedChunk>,
}

impl ChunkSource for BatchView<'_> {
    fn store_meta(&self) -> &StoreMeta {
        self.server.meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        match self.chunks.get(&(level, block)) {
            Some(c) => Ok(c.clone()),
            None => self.server.chunk(level, block),
        }
    }

    /// Assembly from an in-memory map: plain serial lookups, no fan-out.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        indices.iter().map(|&i| self.chunk(level, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};
    use hqmr_store::{write_store, StoreConfig};
    use hqmr_sz3::Sz3Codec;

    fn test_server(budget: usize) -> StoreServer {
        let f = synth::nyx_like(32, 77);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let buf = write_store(
            &mr,
            &StoreConfig::new(1e6).with_chunk_blocks(2),
            &Sz3Codec::default(),
        );
        StoreServer::new(Arc::new(StoreReader::from_bytes(buf).unwrap()), budget)
    }

    #[test]
    fn warm_reads_hit_the_cache() {
        let s = test_server(UNBOUNDED);
        let cold = s.read_level(0).unwrap();
        let st = s.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, st.requests);
        assert!(st.resident_bytes > 0);
        let warm = s.read_level(0).unwrap();
        assert_eq!(cold, warm);
        let st = s.stats();
        assert_eq!(st.hits, st.misses, "second pass is all hits");
        assert_eq!(st.requests, st.hits + st.misses);
    }

    #[test]
    fn zero_budget_caches_nothing_but_serves_correctly() {
        let s = test_server(0);
        let a = s.read_level(0).unwrap();
        let b = s.read_level(0).unwrap();
        assert_eq!(a, b);
        let st = s.stats();
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.peak_resident_bytes, 0);
        assert_eq!(st.hits, 0, "nothing resident to hit");
        assert_eq!(st.requests, st.misses);
    }

    #[test]
    fn tiny_budget_evicts_but_never_exceeds() {
        let budget = 64 * 1024;
        let s = test_server(budget);
        for _ in 0..3 {
            s.read_all().unwrap();
        }
        let st = s.stats();
        assert!(st.evictions > 0, "a 64 KiB budget must evict at 32^3");
        assert!(st.peak_resident_bytes <= budget as u64);
        assert_eq!(st.requests, st.hits + st.misses);
    }

    #[test]
    fn batch_reuses_overlapping_chunks() {
        let s = test_server(0); // even without a cache, a batch decodes once
        let d = s.meta().levels[0].dims;
        let queries = [
            Query::Level { level: 0 },
            Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx, d.ny, d.nz],
                fill: 0.0,
            },
            Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx / 2, d.ny, d.nz],
                fill: 0.0,
            },
        ];
        let total = s.meta().levels[0].chunks.len() as u64;
        let responses = s.serve_batch(&queries).unwrap();
        let st = s.stats();
        assert_eq!(
            st.misses, total,
            "three overlapping fine-level queries decode each chunk once"
        );
        // Responses equal the individual reads.
        let oracle = s.reader();
        match &responses[0] {
            Response::Level(l) => assert_eq!(*l, oracle.read_level(0).unwrap()),
            other => panic!("wrong response kind: {other:?}"),
        }
        match &responses[1] {
            Response::Roi(f) => {
                assert_eq!(
                    *f,
                    oracle
                        .read_roi(0, [0, 0, 0], [d.nx, d.ny, d.nz], 0.0)
                        .unwrap()
                )
            }
            other => panic!("wrong response kind: {other:?}"),
        }
    }

    #[test]
    fn take_stats_returns_window_and_resets() {
        let s = test_server(UNBOUNDED);
        s.read_level(0).unwrap();
        let w1 = s.take_stats();
        assert!(w1.misses > 0);
        assert_eq!(w1.requests, w1.hits + w1.misses);
        // Fresh window: a warm pass is all hits, and nothing from the first
        // window leaks in.
        s.read_level(0).unwrap();
        let w2 = s.take_stats();
        assert_eq!(w2.misses, 0);
        assert_eq!(w2.hits, w1.misses, "same chunk count, now all resident");
        assert_eq!(w2.requests, w2.hits + w2.misses);
        // Residency survives the reset; peak restarts from it.
        assert!(w2.resident_bytes > 0);
        assert_eq!(w2.peak_resident_bytes, w2.resident_bytes);
    }

    #[test]
    fn stats_identity_holds_under_concurrent_load() {
        let s = test_server(64 * 1024);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        s.read_all().unwrap();
                    }
                });
            }
            // Snapshots taken *while* clients are mid-request still balance.
            for _ in 0..64 {
                let st = s.stats();
                assert_eq!(st.requests, st.hits + st.misses);
                assert!(st.shared <= st.hits);
            }
        });
    }

    #[test]
    fn partition_budget_sums_and_protects_tenants() {
        assert_eq!(partition_budget(100, &[]), Vec::<usize>::new());
        assert_eq!(partition_budget(UNBOUNDED, &[1, 2]), vec![UNBOUNDED; 2]);
        // Proportional, exact sum.
        let parts = partition_budget(100, &[3, 1]);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        assert_eq!(parts, vec![75, 25]);
        // Uneven split still sums exactly.
        let parts = partition_budget(100, &[1, 1, 1]);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        // Zero weights get nothing; others share it all.
        let parts = partition_budget(64, &[0, 1, 1]);
        assert_eq!(parts[0], 0);
        assert_eq!(parts.iter().sum::<usize>(), 64);
        // A dominant tenant cannot starve small live tenants.
        let parts = partition_budget(10, &[1_000_000, 1, 1]);
        assert!(parts[1] > 0 && parts[2] > 0, "{parts:?}");
        assert_eq!(parts.iter().sum::<usize>(), 10);
        // All-zero weights: even split.
        let parts = partition_budget(7, &[0, 0, 0]);
        assert_eq!(parts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn batch_propagates_typed_errors() {
        let s = test_server(UNBOUNDED);
        let err = s
            .serve_batch(&[Query::Level { level: 99 }])
            .expect_err("no such level");
        assert!(matches!(err, StoreError::NoSuchLevel(99)));
        let d = s.meta().levels[0].dims;
        let err = s
            .serve_batch(&[Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx + 1, d.ny, d.nz],
                fill: 0.0,
            }])
            .expect_err("roi out of bounds");
        assert!(matches!(err, StoreError::RoiOutOfBounds));
    }
}
