//! `hqmr-serve` — the concurrent serving layer over a block-indexed store.
//!
//! A [`StoreReader`] gives random access to a compressed multi-resolution
//! container, but every query re-fetches and re-decodes its chunks from
//! scratch. Interactive visualization traffic does the opposite of touching
//! each chunk once: many clients pan and zoom over the *same* hot regions,
//! and a chunk decoded for one ROI is needed again milliseconds later by the
//! next. [`StoreServer`] is the layer in between — a `Send + Sync` server
//! wrapping an `Arc<StoreReader>` with:
//!
//! * a **decoded-chunk LRU cache** keyed by `(level, chunk)` under a
//!   configurable byte budget — chunk payloads are shared `Arc<[f32]>`
//!   slabs, so a cache hit is a refcount bump, not a copy;
//! * **single-flight decode**: concurrent requests for the same non-resident
//!   chunk decode it once; the first requester runs the codec while the rest
//!   wait on the shared flight and clone its result;
//! * a **batched query planner** ([`StoreServer::serve_batch`]): a set of
//!   level/ROI/isovalue requests is planned as the *union* of needed chunks,
//!   misses decode in parallel through the rayon shim, and every response is
//!   assembled from the shared decoded set — overlapping requests in one
//!   batch never decode a chunk twice, whatever the cache budget;
//! * [`CacheStats`] — hits / misses / shared waits / evictions / resident
//!   bytes, alongside the reader's existing `bytes_decoded` accounting.
//!
//! Every read method returns results byte-identical to the bare
//! [`StoreReader`]: both funnel through the provider-generic assembly in
//! [`hqmr_store::read`], and the differential property suite in
//! `tests/serve_props.rs` pins the equivalence across every backend,
//! arrangement and budget (including 0 and unbounded).

mod cache;
pub mod temporal;

pub use cache::CacheStats;
pub use temporal::{TemporalServer, TimeQuery, TimeView};

use cache::Key;
use hqmr_grid::{Dims3, Field3};
use hqmr_mr::{LevelData, MultiResData, Upsample};
use hqmr_store::read::{self, ChunkSource};
use hqmr_store::{
    DecodedChunk, ParitySidecar, Progressive, ScrubReport, SidecarStatus, StoreError, StoreMeta,
    StoreReader, Throttle,
};
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

// Compile-time thread-safety contract: the whole point of the server is to
// be shared across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StoreServer>();
    assert_send_sync::<CacheStats>();
};

/// Cache budget meaning "never evict" ([`StoreServer::unbounded`]).
pub const UNBOUNDED: usize = usize::MAX;

/// Carves one global decoded-chunk byte budget into per-tenant budgets,
/// proportionally to `weights` (e.g. each tenant's compressed store size or
/// expected traffic share). Guarantees:
///
/// * the per-tenant budgets sum to exactly `total` (largest-remainder
///   rounding), so a fleet of [`StoreServer`]s provisioned from one global
///   budget can never collectively exceed it;
/// * a tenant with nonzero weight gets a nonzero budget whenever
///   `total >= weights.len()`, so no live tenant is starved to cache-off;
/// * [`UNBOUNDED`] passes through: every tenant is unbounded.
///
/// Zero weights (idle tenants) receive zero budget. An empty weight slice
/// returns an empty vec.
pub fn partition_budget(total: usize, weights: &[u64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    if total == UNBOUNDED {
        return vec![UNBOUNDED; weights.len()];
    }
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if sum == 0 {
        // No information: split evenly, remainder to the front.
        let base = total / weights.len();
        let mut rem = total % weights.len();
        return weights
            .iter()
            .map(|_| {
                let extra = usize::from(rem > 0);
                rem -= extra;
                base + extra
            })
            .collect();
    }
    // Largest-remainder apportionment over floor(total * w / sum).
    let mut out: Vec<usize> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: usize = 0;
    for (i, &w) in weights.iter().enumerate() {
        let prod = total as u128 * w as u128;
        let share = (prod / sum) as usize;
        fracs.push((prod % sum, i));
        out.push(share);
        assigned += share;
    }
    fracs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in fracs.iter().take(total - assigned) {
        out[i] += 1;
    }
    // Nonzero-weight tenants must not be starved when there is budget to
    // hand out: steal single bytes from the largest allocations.
    if total >= weights.len() {
        while let Some(starved) = (0..out.len()).find(|&i| weights[i] > 0 && out[i] == 0) {
            let richest = (0..out.len()).max_by_key(|&i| out[i]).expect("nonempty");
            debug_assert!(out[richest] > 1);
            out[richest] -= 1;
            out[starved] += 1;
        }
    }
    out
}

/// One client request in a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// One whole resolution level.
    Level {
        /// Level index (refinement distance, 0 = finest).
        level: usize,
    },
    /// An axis-aligned box `[lo, hi)` of one level, uncovered cells filled
    /// with `fill`.
    Roi {
        /// Level index.
        level: usize,
        /// Low corner, level cell coordinates.
        lo: [usize; 3],
        /// High corner (exclusive).
        hi: [usize; 3],
        /// Fill value for cells no unit block covers.
        fill: f32,
    },
    /// One level under isovalue chunk-skipping.
    Iso {
        /// Level index.
        level: usize,
        /// The isovalue.
        iso: f32,
    },
}

/// The response to one [`Query`], same order as the request slice.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Level`].
    Level(LevelData),
    /// Answer to [`Query::Roi`].
    Roi(Field3),
    /// Answer to [`Query::Iso`].
    Iso(LevelData),
}

/// One query's answer under [`StoreServer::serve_batch_degraded`], carrying
/// the quality flag alongside the data: `degraded` lists every
/// `(level, chunk)` the query touched whose real payload could not be
/// decoded and was replaced by a best-effort fill (nearest coarser level
/// upsampled, chunk-table proxy where no coarser data covers the region).
/// Empty means the response is bit-identical to [`StoreServer::serve_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The assembled answer (possibly containing filled regions).
    pub response: Response,
    /// `(level, chunk)` pairs served from fill instead of real data, sorted.
    pub degraded: Vec<(usize, usize)>,
}

impl QueryResult {
    /// Whether every chunk behind this answer decoded cleanly.
    pub fn is_exact(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// Decides whether a chunk fetch is forced to fail as
/// [`StoreError::CorruptChunk`] — the injection point fault-injection
/// harnesses (the `chaos` module of `hqmr-net`) hook into. Called with
/// `(level, block)` before the real fetch; returning `true` simulates a
/// chunk whose CRC check failed. Because every stored chunk is CRC-guarded,
/// this is observationally identical to real at-rest bit rot.
pub type FaultHook = Arc<dyn Fn(usize, usize) -> bool + Send + Sync>;

/// A `Send + Sync` serving layer over one shared [`StoreReader`].
///
/// All methods take `&self`; clone the `Arc<StoreServer>` (or borrow across
/// `std::thread::scope`) into as many client threads as needed. Results are
/// byte-identical to the bare reader's at every cache budget.
pub struct StoreServer {
    reader: Arc<StoreReader>,
    cache: cache::ChunkCache<Key>,
    fault_hook: Option<FaultHook>,
    /// Parity sidecar for online repair: when present, a chunk that fails
    /// its CRC (or a chaos-injected fault) is reconstructed from its XOR
    /// group before any degradation kicks in. Repaired chunks are exact and
    /// enter the LRU like clean decodes.
    parity: Option<ParitySidecar>,
    /// Chunks that failed to decode during a degraded batch. Quarantined
    /// chunks are never re-fetched by the degraded path (they go straight
    /// to fill), keeping repeat traffic off a known-bad disk region.
    quarantine: Mutex<BTreeSet<Key>>,
}

impl StoreServer {
    /// Wraps `reader` with a decoded-chunk cache of at most `cache_budget`
    /// bytes (decoded payload footprint). A budget of `0` disables caching
    /// entirely — reads stay correct and single-flight still deduplicates
    /// concurrent decodes; [`UNBOUNDED`] never evicts.
    pub fn new(reader: Arc<StoreReader>, cache_budget: usize) -> Self {
        StoreServer {
            reader,
            cache: cache::ChunkCache::new(cache_budget),
            fault_hook: None,
            parity: None,
            quarantine: Mutex::new(BTreeSet::new()),
        }
    }

    /// Installs a [`FaultHook`] consulted before every chunk decode (builder
    /// form, for use before the server is shared). Production servers leave
    /// this unset; the chaos harness injects simulated corruption here. The
    /// hook fires inside the cache's decode path, so a chunk already
    /// resident (including one just repaired) is served without re-rolling
    /// the fault — matching real at-rest rot, which only bites on fetch.
    pub fn with_fault_hook(mut self, hook: FaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Arms online repair with a parity sidecar (builder form). Fails with
    /// [`StoreError::SidecarMismatch`] if the sidecar describes a different
    /// store than the wrapped reader.
    pub fn with_parity(mut self, sidecar: ParitySidecar) -> Result<Self, StoreError> {
        if !sidecar.matches(self.reader.meta()) {
            return Err(StoreError::SidecarMismatch);
        }
        self.parity = Some(sidecar);
        Ok(self)
    }

    /// Builds a fresh parity sidecar over the wrapped store (which must
    /// verify clean) and arms online repair with it — the in-memory-dataset
    /// path, where no `.hqpr` file exists to load. `group` chunks share one
    /// XOR parity block (`0` is rejected by construction downstream; use
    /// [`hqmr_store::DEFAULT_PARITY_GROUP`] by default).
    pub fn with_built_parity(self, group: usize) -> Result<Self, StoreError> {
        let sidecar = ParitySidecar::from_reader(&self.reader, group)?;
        self.with_parity(sidecar)
    }

    /// Whether online parity repair is armed.
    pub fn has_parity(&self) -> bool {
        self.parity.is_some()
    }

    /// [`StoreServer::new`] with an unbounded budget.
    pub fn unbounded(reader: Arc<StoreReader>) -> Self {
        Self::new(reader, UNBOUNDED)
    }

    /// The wrapped reader (e.g. for its `bytes_decoded` accounting).
    pub fn reader(&self) -> &StoreReader {
        &self.reader
    }

    /// The store's directory.
    pub fn meta(&self) -> &StoreMeta {
        self.reader.meta()
    }

    /// Snapshot of the cache counters. The snapshot is atomically
    /// consistent with respect to the ledger identity: `requests` is
    /// derived as `hits + misses` at read time, so the identity holds even
    /// when other client threads have lookups mid-flight — an exporter
    /// never has to quiesce traffic to publish balanced stats.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot-and-reset in one step: returns the counter window
    /// accumulated since the last reset and starts a fresh one, losing no
    /// concurrent increment (each lands in exactly one window). The
    /// per-tenant stats export of the network serving layer drives this.
    pub fn take_stats(&self) -> CacheStats {
        self.cache.take_stats()
    }

    /// Zeroes the cache counters and restarts the high-water mark from the
    /// current residency; resident chunks are kept.
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
    }

    /// Drops every resident chunk (a cold cache without rebuilding the
    /// server). Counters are kept.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Reads one whole resolution level through the cache.
    pub fn read_level(&self, level: usize) -> Result<LevelData, StoreError> {
        read::read_level(self, level)
    }

    /// Reads every level through the cache.
    pub fn read_all(&self) -> Result<MultiResData, StoreError> {
        read::read_all(self)
    }

    /// Reads the axis-aligned box `[lo, hi)` of one level through the cache;
    /// equals [`StoreReader::read_roi`] byte-for-byte.
    pub fn read_roi(
        &self,
        level: usize,
        lo: [usize; 3],
        hi: [usize; 3],
        fill: f32,
    ) -> Result<Field3, StoreError> {
        read::read_roi(self, level, lo, hi, fill)
    }

    /// Reads one level under isovalue chunk-skipping through the cache;
    /// equals [`StoreReader::read_level_iso`] byte-for-byte.
    pub fn read_level_iso(&self, level: usize, iso: f32) -> Result<LevelData, StoreError> {
        read::read_level_iso(self, level, iso)
    }

    /// Coarse→fine progressive refinement through the cache.
    pub fn progressive(&self, scheme: Upsample) -> Progressive<'_, Self> {
        read::progressive(self, scheme)
    }

    /// The `(level, chunk)` pairs one query needs, from chunk-table
    /// accounting alone (no decoding).
    fn query_keys(&self, q: &Query) -> Result<Vec<Key>, StoreError> {
        let meta = self.meta();
        Ok(match *q {
            Query::Level { level } => {
                let lm = meta
                    .levels
                    .get(level)
                    .ok_or(StoreError::NoSuchLevel(level))?;
                (0..lm.chunks.len()).map(|i| (level, i)).collect()
            }
            Query::Roi { level, lo, hi, .. } => read::roi_chunk_indices(meta, level, lo, hi)?
                .into_iter()
                .map(|i| (level, i))
                .collect(),
            Query::Iso { level, iso } => read::iso_chunk_indices(meta, level, iso)?
                .into_iter()
                .map(|i| (level, i))
                .collect(),
        })
    }

    /// The set of `(level, chunk)` pairs a batch of queries needs — the
    /// union across requests, each chunk exactly once.
    pub fn plan(&self, queries: &[Query]) -> Result<BTreeSet<(usize, usize)>, StoreError> {
        let mut need: BTreeSet<Key> = BTreeSet::new();
        for q in queries {
            need.extend(self.query_keys(q)?);
        }
        Ok(need)
    }

    /// Serves a batch of queries: plans the union of needed chunks, decodes
    /// the misses in parallel (each through single-flight, so a concurrent
    /// batch on another thread still shares the work), then assembles every
    /// response from the shared decoded set. Overlapping queries in one
    /// batch touch each chunk once even at cache budget 0. Responses are in
    /// request order and byte-identical to issuing each query alone.
    pub fn serve_batch(&self, queries: &[Query]) -> Result<Vec<Response>, StoreError> {
        let keys: Vec<Key> = self.plan(queries)?.into_iter().collect();
        let fetched: Vec<Result<DecodedChunk, StoreError>> = keys
            .par_iter()
            .map(|&(level, block)| self.chunk(level, block))
            .collect();
        let mut chunks: HashMap<Key, DecodedChunk> = HashMap::with_capacity(keys.len());
        for (key, res) in keys.into_iter().zip(fetched) {
            chunks.insert(key, res?);
        }
        // Assembly pulls from the batch's own decoded set, so the responses
        // are immune to evictions happening underneath (budget 0 included).
        let view = BatchView {
            server: self,
            chunks,
        };
        queries
            .iter()
            .map(|q| match *q {
                Query::Level { level } => read::read_level(&view, level).map(Response::Level),
                Query::Roi {
                    level,
                    lo,
                    hi,
                    fill,
                } => read::read_roi(&view, level, lo, hi, fill).map(Response::Roi),
                Query::Iso { level, iso } => {
                    read::read_level_iso(&view, level, iso).map(Response::Iso)
                }
            })
            .collect()
    }

    /// [`StoreServer::serve_batch`] with graceful degradation: a chunk whose
    /// payload cannot be decoded ([`StoreError::CorruptChunk`] or
    /// [`StoreError::Codec`]) no longer fails the whole batch. The chunk is
    /// quarantined, its blocks are synthesized from the nearest coarser
    /// level's data upsampled into place (falling back to the chunk table's
    /// `(min+max)/2` proxy where no coarser level covers the region — in
    /// this adaptive layout levels *partition* the domain, so a fine chunk
    /// usually has no coarser twin), and each answer carries the
    /// `(level, chunk)` pairs it was degraded on. Planning errors
    /// (`NoSuchLevel`, `RoiOutOfBounds`) and store I/O failures still fail
    /// the batch: those are caller or infrastructure faults, not data decay.
    ///
    /// With no corrupt chunks, every [`QueryResult::is_exact`] and the
    /// responses are bit-identical to [`StoreServer::serve_batch`].
    pub fn serve_batch_degraded(&self, queries: &[Query]) -> Result<Vec<QueryResult>, StoreError> {
        let per_query: Vec<Vec<Key>> = queries
            .iter()
            .map(|q| self.query_keys(q))
            .collect::<Result<_, _>>()?;
        let mut need: BTreeSet<Key> = BTreeSet::new();
        for ks in &per_query {
            need.extend(ks.iter().copied());
        }
        let keys: Vec<Key> = need.into_iter().collect();
        let fetched: Vec<Result<DecodedChunk, StoreError>> = keys
            .par_iter()
            .map(|&(level, block)| {
                if self.is_quarantined(level, block) {
                    Err(StoreError::CorruptChunk { level, block })
                } else {
                    self.chunk(level, block)
                }
            })
            .collect();
        let mut degraded: BTreeSet<Key> = BTreeSet::new();
        let mut chunks: HashMap<Key, DecodedChunk> = HashMap::with_capacity(keys.len());
        for (key, res) in keys.into_iter().zip(fetched) {
            match res {
                Ok(c) => {
                    chunks.insert(key, c);
                }
                Err(StoreError::CorruptChunk { .. } | StoreError::Codec { .. }) => {
                    self.quarantine.lock().expect("quarantine lock").insert(key);
                    // Fills never enter the shared cache: an exact read
                    // after the disk heals must not see stale synthetic
                    // data.
                    chunks.insert(key, self.synthesize_fill(key.0, key.1)?);
                    degraded.insert(key);
                }
                Err(e) => return Err(e),
            }
        }
        let view = BatchView {
            server: self,
            chunks,
        };
        queries
            .iter()
            .zip(per_query)
            .map(|(q, ks)| {
                let response = match *q {
                    Query::Level { level } => read::read_level(&view, level).map(Response::Level),
                    Query::Roi {
                        level,
                        lo,
                        hi,
                        fill,
                    } => read::read_roi(&view, level, lo, hi, fill).map(Response::Roi),
                    Query::Iso { level, iso } => {
                        read::read_level_iso(&view, level, iso).map(Response::Iso)
                    }
                }?;
                let flags: Vec<Key> = ks.into_iter().filter(|k| degraded.contains(k)).collect();
                Ok(QueryResult {
                    response,
                    degraded: flags,
                })
            })
            .collect()
    }

    /// Best-effort replacement for a chunk that will not decode. Starts
    /// every block at the chunk table's `(min+max)/2` proxy, then overlays
    /// data from coarser levels, coarsest first, so the *nearest* coarser
    /// level that covers a cell wins — the same coarse→fine precedence the
    /// progressive path uses. Coarser chunks that themselves fail to decode
    /// are skipped (the proxy remains).
    fn synthesize_fill(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        let meta = self.meta();
        let lm = meta
            .levels
            .get(level)
            .ok_or(StoreError::NoSuchLevel(level))?;
        let cm = lm
            .chunks
            .get(block)
            .ok_or(StoreError::Malformed("chunk index out of range"))?;
        let unit = cm.unit;
        let n = unit.pow(3);
        let mid = 0.5 * (cm.min + cm.max);
        let proxy = if mid.is_finite() { mid } else { 0.0 };
        let origins: Vec<[usize; 3]> = cm.slots.iter().map(|&(_, origin)| origin).collect();
        let mut data = vec![proxy; origins.len() * n];
        let bd = Dims3::cube(unit);
        for lc in ((level + 1)..meta.levels.len()).rev() {
            // One level-`lc` cell spans `rel` level-`level` cells.
            let rel = 1usize << (lc - level);
            let cd = meta.levels[lc].dims;
            for (slot, &origin) in origins.iter().enumerate() {
                let clo: [usize; 3] = std::array::from_fn(|a| origin[a] / rel);
                let chi: [usize; 3] = std::array::from_fn(|a| {
                    ((origin[a] + unit).div_ceil(rel)).min([cd.nx, cd.ny, cd.nz][a])
                });
                if (0..3).any(|a| clo[a] >= chi[a]) {
                    continue;
                }
                // NaN marks "no coarse block covers this cell" so real
                // coarse zeros are not mistaken for absence.
                let coarse = match read::read_roi(self, lc, clo, chi, f32::NAN) {
                    Ok(f) => f,
                    Err(_) => continue,
                };
                for x in 0..unit {
                    for y in 0..unit {
                        for z in 0..unit {
                            let g = [origin[0] + x, origin[1] + y, origin[2] + z];
                            let gc: [usize; 3] = std::array::from_fn(|a| g[a] / rel);
                            if (0..3).any(|a| gc[a] < clo[a] || gc[a] >= chi[a]) {
                                continue;
                            }
                            let v = coarse.get(gc[0] - clo[0], gc[1] - clo[1], gc[2] - clo[2]);
                            if !v.is_nan() {
                                data[slot * n + bd.idx(x, y, z)] = v;
                            }
                        }
                    }
                }
            }
        }
        Ok(DecodedChunk {
            unit,
            origins: origins.into(),
            data: data.into(),
        })
    }

    /// Parity reconstruction of a chunk whose decode failed: XOR the group's
    /// surviving members back into the missing payload, verify it against
    /// the chunk table's CRC (bit-exactness by construction), and run it
    /// through the normal decode path. Runs inside the cache's decode
    /// closure, so a successful repair is published to the LRU exactly like
    /// a clean decode — *unlike* degraded fills, which never enter the
    /// cache. On failure the caller's original typed error propagates so
    /// degradation semantics are unchanged.
    fn try_repair(
        &self,
        level: usize,
        block: usize,
        original: StoreError,
    ) -> Result<DecodedChunk, StoreError> {
        let Some(parity) = &self.parity else {
            return Err(original);
        };
        match parity
            .reconstruct(&self.reader, level, block)
            .and_then(|bytes| self.reader.decode_chunk_bytes(level, block, &bytes))
        {
            Ok(chunk) => {
                self.cache.note_repair();
                Ok(chunk)
            }
            Err(_) => {
                self.cache.note_repair_failure();
                Err(original)
            }
        }
    }

    /// One background scrub cycle over every chunk of the wrapped store:
    /// verifies each stored payload against its chunk-table CRC (paced by
    /// `throttle`), routes corrupt chunks through the online repair path —
    /// a successful reconstruction lands in the LRU, so subsequent reads of
    /// a rotted chunk are exact without touching the degraded path — and
    /// tallies the pass. The wrapped store's bytes are immutable here
    /// (in-memory or shared file); at-rest healing of files is
    /// [`hqmr_store::scrub_store`]'s job.
    pub fn scrub_pass(&self, mut throttle: Option<&mut Throttle>) -> ScrubReport {
        let mut report = ScrubReport {
            verified: 0,
            repaired: 0,
            unrepairable: Vec::new(),
            bytes_scanned: 0,
            sidecar: if self.parity.is_some() {
                SidecarStatus::Present
            } else {
                SidecarStatus::Missing
            },
            sidecar_rebuilt: false,
        };
        let meta = self.reader.meta();
        for level in 0..meta.levels.len() {
            for block in 0..meta.levels[level].chunks.len() {
                let len = meta.levels[level].chunks[block].len as u64;
                if let Some(t) = throttle.as_deref_mut() {
                    t.consume(len);
                }
                report.bytes_scanned += len;
                match self.reader.fetch_chunk_bytes(level, block) {
                    Ok(_) => report.verified += 1,
                    Err(_) => match self.chunk(level, block) {
                        Ok(_) => report.repaired += 1,
                        Err(_) => report.unrepairable.push((level, block)),
                    },
                }
            }
        }
        report
    }

    fn is_quarantined(&self, level: usize, block: usize) -> bool {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .contains(&(level, block))
    }

    /// The `(level, chunk)` pairs currently quarantined (sorted).
    pub fn quarantined(&self) -> Vec<(usize, usize)> {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .iter()
            .copied()
            .collect()
    }

    /// Empties the quarantine (e.g. after the underlying store was
    /// repaired); subsequent degraded batches re-attempt real decodes.
    pub fn clear_quarantine(&self) {
        self.quarantine.lock().expect("quarantine lock").clear();
    }
}

impl ChunkSource for StoreServer {
    fn store_meta(&self) -> &StoreMeta {
        self.reader.meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        self.cache.get_or_decode((level, block), || {
            let faulted = self
                .fault_hook
                .as_ref()
                .is_some_and(|hook| hook(level, block));
            let res = if faulted {
                Err(StoreError::CorruptChunk { level, block })
            } else {
                self.reader.decode_chunk(level, block)
            };
            match res {
                Err(original @ (StoreError::CorruptChunk { .. } | StoreError::Codec { .. })) => {
                    self.try_repair(level, block, original)
                }
                other => other,
            }
        })
    }

    /// Bulk override: one lock acquisition harvests every resident chunk,
    /// then only the misses go through the (parallel) single-flight decode
    /// path — a warm read never pays per-chunk locking or thread fan-out.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        let keys: Vec<Key> = indices.iter().map(|&i| (level, i)).collect();
        let mut out = self.cache.get_resident(&keys);
        let missing: Vec<(usize, usize)> = out
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(pos, _)| (pos, indices[pos]))
            .collect();
        if missing.is_empty() {
            return Ok(out.into_iter().map(|c| c.expect("all resident")).collect());
        }
        let decoded: Vec<Result<DecodedChunk, StoreError>> = missing
            .par_iter()
            .map(|&(_, block)| self.chunk(level, block))
            .collect();
        for ((pos, _), res) in missing.into_iter().zip(decoded) {
            out[pos] = Some(res?);
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("misses just filled"))
            .collect())
    }
}

/// One batch's decoded chunk set, viewed as a [`ChunkSource`] for assembly.
/// Falls back to the server for anything outside the plan (which only
/// happens if a query slips past [`StoreServer::plan`] — correctness never
/// depends on the plan being complete).
struct BatchView<'a> {
    server: &'a StoreServer,
    chunks: HashMap<Key, DecodedChunk>,
}

impl ChunkSource for BatchView<'_> {
    fn store_meta(&self) -> &StoreMeta {
        self.server.meta()
    }

    fn chunk(&self, level: usize, block: usize) -> Result<DecodedChunk, StoreError> {
        match self.chunks.get(&(level, block)) {
            Some(c) => Ok(c.clone()),
            None => self.server.chunk(level, block),
        }
    }

    /// Assembly from an in-memory map: plain serial lookups, no fan-out.
    fn chunks(&self, level: usize, indices: &[usize]) -> Result<Vec<DecodedChunk>, StoreError> {
        indices.iter().map(|&i| self.chunk(level, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::synth;
    use hqmr_mr::{to_adaptive, RoiConfig};
    use hqmr_store::{write_store, StoreConfig};
    use hqmr_sz3::Sz3Codec;

    fn test_server(budget: usize) -> StoreServer {
        let f = synth::nyx_like(32, 77);
        let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
        let buf = write_store(
            &mr,
            &StoreConfig::new(1e6).with_chunk_blocks(2),
            &Sz3Codec::default(),
        );
        StoreServer::new(Arc::new(StoreReader::from_bytes(buf).unwrap()), budget)
    }

    #[test]
    fn warm_reads_hit_the_cache() {
        let s = test_server(UNBOUNDED);
        let cold = s.read_level(0).unwrap();
        let st = s.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, st.requests);
        assert!(st.resident_bytes > 0);
        let warm = s.read_level(0).unwrap();
        assert_eq!(cold, warm);
        let st = s.stats();
        assert_eq!(st.hits, st.misses, "second pass is all hits");
        assert_eq!(st.requests, st.hits + st.misses);
    }

    #[test]
    fn zero_budget_caches_nothing_but_serves_correctly() {
        let s = test_server(0);
        let a = s.read_level(0).unwrap();
        let b = s.read_level(0).unwrap();
        assert_eq!(a, b);
        let st = s.stats();
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.peak_resident_bytes, 0);
        assert_eq!(st.hits, 0, "nothing resident to hit");
        assert_eq!(st.requests, st.misses);
    }

    #[test]
    fn tiny_budget_evicts_but_never_exceeds() {
        let budget = 64 * 1024;
        let s = test_server(budget);
        for _ in 0..3 {
            s.read_all().unwrap();
        }
        let st = s.stats();
        assert!(st.evictions > 0, "a 64 KiB budget must evict at 32^3");
        assert!(st.peak_resident_bytes <= budget as u64);
        assert_eq!(st.requests, st.hits + st.misses);
    }

    #[test]
    fn batch_reuses_overlapping_chunks() {
        let s = test_server(0); // even without a cache, a batch decodes once
        let d = s.meta().levels[0].dims;
        let queries = [
            Query::Level { level: 0 },
            Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx, d.ny, d.nz],
                fill: 0.0,
            },
            Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx / 2, d.ny, d.nz],
                fill: 0.0,
            },
        ];
        let total = s.meta().levels[0].chunks.len() as u64;
        let responses = s.serve_batch(&queries).unwrap();
        let st = s.stats();
        assert_eq!(
            st.misses, total,
            "three overlapping fine-level queries decode each chunk once"
        );
        // Responses equal the individual reads.
        let oracle = s.reader();
        match &responses[0] {
            Response::Level(l) => assert_eq!(*l, oracle.read_level(0).unwrap()),
            other => panic!("wrong response kind: {other:?}"),
        }
        match &responses[1] {
            Response::Roi(f) => {
                assert_eq!(
                    *f,
                    oracle
                        .read_roi(0, [0, 0, 0], [d.nx, d.ny, d.nz], 0.0)
                        .unwrap()
                )
            }
            other => panic!("wrong response kind: {other:?}"),
        }
    }

    #[test]
    fn take_stats_returns_window_and_resets() {
        let s = test_server(UNBOUNDED);
        s.read_level(0).unwrap();
        let w1 = s.take_stats();
        assert!(w1.misses > 0);
        assert_eq!(w1.requests, w1.hits + w1.misses);
        // Fresh window: a warm pass is all hits, and nothing from the first
        // window leaks in.
        s.read_level(0).unwrap();
        let w2 = s.take_stats();
        assert_eq!(w2.misses, 0);
        assert_eq!(w2.hits, w1.misses, "same chunk count, now all resident");
        assert_eq!(w2.requests, w2.hits + w2.misses);
        // Residency survives the reset; peak restarts from it.
        assert!(w2.resident_bytes > 0);
        assert_eq!(w2.peak_resident_bytes, w2.resident_bytes);
    }

    #[test]
    fn stats_identity_holds_under_concurrent_load() {
        let s = test_server(64 * 1024);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        s.read_all().unwrap();
                    }
                });
            }
            // Snapshots taken *while* clients are mid-request still balance.
            for _ in 0..64 {
                let st = s.stats();
                assert_eq!(st.requests, st.hits + st.misses);
                assert!(st.shared <= st.hits);
            }
        });
    }

    #[test]
    fn partition_budget_sums_and_protects_tenants() {
        assert_eq!(partition_budget(100, &[]), Vec::<usize>::new());
        assert_eq!(partition_budget(UNBOUNDED, &[1, 2]), vec![UNBOUNDED; 2]);
        // Proportional, exact sum.
        let parts = partition_budget(100, &[3, 1]);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        assert_eq!(parts, vec![75, 25]);
        // Uneven split still sums exactly.
        let parts = partition_budget(100, &[1, 1, 1]);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        // Zero weights get nothing; others share it all.
        let parts = partition_budget(64, &[0, 1, 1]);
        assert_eq!(parts[0], 0);
        assert_eq!(parts.iter().sum::<usize>(), 64);
        // A dominant tenant cannot starve small live tenants.
        let parts = partition_budget(10, &[1_000_000, 1, 1]);
        assert!(parts[1] > 0 && parts[2] > 0, "{parts:?}");
        assert_eq!(parts.iter().sum::<usize>(), 10);
        // All-zero weights: even split.
        let parts = partition_budget(7, &[0, 0, 0]);
        assert_eq!(parts.iter().sum::<usize>(), 7);
    }

    /// Hook failing exactly the named chunk, as injected chaos would.
    fn fail_only(level: usize, block: usize) -> FaultHook {
        Arc::new(move |l, b| l == level && b == block)
    }

    #[test]
    fn degraded_batch_equals_exact_when_clean() {
        let s = test_server(UNBOUNDED);
        let d = s.meta().levels[0].dims;
        let queries = [
            Query::Level { level: 0 },
            Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx, d.ny, d.nz / 2],
                fill: 0.0,
            },
            Query::Iso { level: 0, iso: 0.5 },
        ];
        let exact = s.serve_batch(&queries).unwrap();
        let degraded = s.serve_batch_degraded(&queries).unwrap();
        assert_eq!(exact.len(), degraded.len());
        for (e, d) in exact.iter().zip(&degraded) {
            assert!(d.is_exact());
            assert_eq!(*e, d.response, "clean degraded read must be bit-identical");
        }
        assert!(s.quarantined().is_empty());
    }

    #[test]
    fn corrupt_chunk_is_quarantined_and_filled_not_fatal() {
        let s = test_server(UNBOUNDED).with_fault_hook(fail_only(0, 0));
        let queries = [Query::Level { level: 0 }];
        // The exact path keeps its strict contract.
        let err = s.serve_batch(&queries).expect_err("exact path must fail");
        assert!(matches!(
            err,
            StoreError::CorruptChunk { level: 0, block: 0 }
        ));
        // The degraded path answers, flagging the filled chunk.
        let results = s.serve_batch_degraded(&queries).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].degraded, vec![(0, 0)]);
        assert_eq!(s.quarantined(), vec![(0, 0)]);
        // Blocks outside the corrupt chunk are bit-identical to the oracle;
        // the filled blocks are at least finite.
        let oracle = s.reader().read_level(0).unwrap();
        let Response::Level(got) = &results[0].response else {
            panic!("wrong response kind");
        };
        let corrupt: std::collections::HashSet<[usize; 3]> = s.meta().levels[0].chunks[0]
            .slots
            .iter()
            .map(|&(_, origin)| origin)
            .collect();
        assert_eq!(got.blocks.len(), oracle.blocks.len());
        for (g, o) in got.blocks.iter().zip(&oracle.blocks) {
            assert_eq!(g.origin, o.origin);
            if corrupt.contains(&g.origin) {
                assert!(g.data.iter().all(|v| v.is_finite()));
            } else {
                assert_eq!(g.data, o.data, "clean chunk altered at {:?}", g.origin);
            }
        }
        // Quarantine is sticky until cleared, then the (still-failing) hook
        // re-quarantines on the next degraded read.
        s.clear_quarantine();
        assert!(s.quarantined().is_empty());
        let again = s.serve_batch_degraded(&queries).unwrap();
        assert_eq!(again[0].degraded, vec![(0, 0)]);
    }

    #[test]
    fn degraded_fill_prefers_coarser_data_over_proxy() {
        // A chunk fully covered by a coarser level must take its fill from
        // the upsampled coarse data, not the flat proxy. Build a 2-level
        // store by brute force: find a fine chunk whose region some coarser
        // block covers.
        let s = test_server(UNBOUNDED);
        let meta = s.meta();
        if meta.levels.len() < 2 {
            return; // layout has a single level at this scale; nothing to assert
        }
        // Corrupt every chunk of the finest level; fills may draw on any
        // coarser level.
        let s = test_server(UNBOUNDED).with_fault_hook(Arc::new(|l, _| l == 0));
        let results = s
            .serve_batch_degraded(&[Query::Level { level: 0 }])
            .unwrap();
        let Response::Level(got) = &results[0].response else {
            panic!("wrong response kind");
        };
        assert!(!results[0].is_exact());
        assert!(got
            .blocks
            .iter()
            .all(|b| b.data.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn batch_propagates_typed_errors() {
        let s = test_server(UNBOUNDED);
        let err = s
            .serve_batch(&[Query::Level { level: 99 }])
            .expect_err("no such level");
        assert!(matches!(err, StoreError::NoSuchLevel(99)));
        // Degradation covers data decay only — planning errors stay fatal.
        let err = s
            .serve_batch_degraded(&[Query::Level { level: 99 }])
            .expect_err("no such level");
        assert!(matches!(err, StoreError::NoSuchLevel(99)));
        let d = s.meta().levels[0].dims;
        let err = s
            .serve_batch(&[Query::Roi {
                level: 0,
                lo: [0, 0, 0],
                hi: [d.nx + 1, d.ny, d.nz],
                fill: 0.0,
            }])
            .expect_err("roi out of bounds");
        assert!(matches!(err, StoreError::RoiOutOfBounds));
    }
}
