//! The decoded-chunk LRU cache with single-flight decode.
//!
//! Internals of [`StoreServer`](crate::StoreServer): a byte-budgeted LRU
//! over [`DecodedChunk`]s plus an in-flight table that deduplicates
//! concurrent decodes of the same chunk. One mutex guards the cache state
//! (entry map, recency order, in-flight table); decoding itself never runs
//! under that lock — a decode's waiters park on the flight's own
//! mutex/condvar pair, so a slow chunk stalls only its own requesters.

use hqmr_store::{DecodedChunk, StoreError};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Single-store cache key: `(level, chunk index)`. The cache itself is
/// generic over the key — the temporal server keys the same structure by
/// `(time, level, chunk)`.
pub(crate) type Key = (usize, usize);

/// Snapshot of the serving layer's cache accounting.
///
/// Counter identities (all counts since construction or the last
/// [`StoreServer::reset_stats`](crate::StoreServer::reset_stats) /
/// [`StoreServer::take_stats`](crate::StoreServer::take_stats)):
///
/// * `requests == hits + misses` — every chunk lookup is classified as
///   exactly one of the two. The identity holds in *every* snapshot, even
///   taken mid-request from another thread: `requests` is not a separate
///   counter that could race ahead of its classification, it is derived
///   from `hits + misses` at read time. A per-tenant exporter (the network
///   server) can therefore publish snapshots without quiescing clients;
/// * `hits` — served without running the codec: either resident in the
///   cache, or joined another client's in-flight decode (`shared`, a subset
///   of `hits`, counts the latter);
/// * `misses` — lookups that performed a decode themselves (the store
///   reader's own `bytes_decoded` counter grows by the chunk's compressed
///   length for each of these, and only these);
/// * `evictions` — resident entries pushed out by the byte budget;
/// * `resident_bytes` / `peak_resident_bytes` — current and high-water
///   decoded-payload footprint; both are `≤ budget_bytes` at all times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total chunk lookups — always exactly `hits + misses` (derived at
    /// snapshot time, see above).
    pub requests: u64,
    /// Lookups served without decoding (resident or shared in-flight).
    pub hits: u64,
    /// Subset of `hits` that waited on another client's in-flight decode.
    pub shared: u64,
    /// Lookups that decoded the chunk themselves.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    pub peak_resident_bytes: u64,
    /// The configured byte budget (`u64::MAX` when unbounded).
    pub budget_bytes: u64,
    /// Corrupt chunks healed from their parity sidecar on the serve path.
    /// Repaired chunks are *exact* — they re-enter the normal decode path
    /// and the LRU like any clean decode (unlike degraded fills, which stay
    /// uncached).
    pub repairs: u64,
    /// Corrupt chunks parity could not heal (no sidecar, or group
    /// redundancy exhausted); the request fell through to its typed error
    /// and, on the degraded path, a proxy fill.
    pub repair_failures: u64,
}

/// Monotonic counters, updated lock-free with `Relaxed` ordering:
/// individually exact tallies (no increment is ever lost). There is no
/// `requests` counter — it is derived as `hits + misses` when a snapshot is
/// taken, so the ledger identity cannot be observed broken even while
/// lookups are in flight on other threads. `shared` is incremented *after*
/// `hits` on the join path, so `shared <= hits` also holds in every
/// snapshot.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    shared: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    repairs: AtomicU64,
    repair_failures: AtomicU64,
}

/// One in-flight decode. Waiters park on `cv` until the leader publishes.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

enum FlightState {
    /// The leader is still decoding.
    Pending,
    /// Decode succeeded; every waiter clones the shared chunk.
    Done(DecodedChunk),
    /// Decode failed. Waiters re-derive their own typed error by decoding
    /// themselves: `StoreError` holds non-`Clone` payloads (`io::Error`),
    /// and wrapping a shared error in an `Arc` variant would change the
    /// variant every caller pattern-matches (`CorruptChunk { .. }` etc.).
    /// Accepted trade-off: on a *corrupt* chunk, each of the N concurrent
    /// waiters pays one redundant fetch+CRC+decode-attempt — bounded by the
    /// waiters present at failure time, on a path that only exists when the
    /// store is damaged. The success path stays one decode total.
    Failed,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }
}

/// A resident entry and its recency stamp (the key into `order`).
struct Entry {
    chunk: DecodedChunk,
    stamp: u64,
}

/// Mutex-guarded cache state.
struct CacheState<K> {
    /// Resident chunks.
    entries: HashMap<K, Entry>,
    /// Recency order: stamp → key, oldest first. Kept in lockstep with
    /// `entries` (every entry's `stamp` is a key in `order` and vice versa).
    order: BTreeMap<u64, K>,
    /// Next recency stamp.
    clock: u64,
    /// Sum of resident `DecodedChunk::resident_bytes`.
    resident: usize,
    /// High-water mark of `resident`.
    peak: usize,
    /// Decodes currently running, by chunk.
    inflight: HashMap<K, Arc<Flight>>,
}

impl<K: Eq + Hash + Copy> CacheState<K> {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Moves `key`'s entry to most-recently-used and returns a clone.
    fn touch(&mut self, key: K) -> Option<DecodedChunk> {
        let stamp = self.tick();
        let e = self.entries.get_mut(&key)?;
        let old = std::mem::replace(&mut e.stamp, stamp);
        let chunk = e.chunk.clone();
        self.order.remove(&old);
        self.order.insert(stamp, key);
        Some(chunk)
    }
}

/// The cache proper, generic over the chunk-identity key. All methods take
/// `&self`; the type is `Send + Sync`.
pub(crate) struct ChunkCache<K = Key> {
    budget: usize,
    state: Mutex<CacheState<K>>,
    counters: Counters,
}

impl<K: Eq + Hash + Copy> ChunkCache<K> {
    pub(crate) fn new(budget: usize) -> Self {
        ChunkCache {
            budget,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                resident: 0,
                peak: 0,
                inflight: HashMap::new(),
            }),
            counters: Counters::default(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState<K>> {
        self.state.lock().expect("chunk cache lock poisoned")
    }

    /// Returns `key`'s chunk, decoding at most once across all concurrent
    /// callers: the first requester of a non-resident chunk runs `decode`
    /// while later requesters wait on the shared flight and clone its
    /// result. `decode` runs outside every cache lock, so it may itself
    /// recurse into the cache under a *different* key (the temporal server's
    /// chain decode does, with strictly decreasing time — no cycle, no
    /// deadlock). It is `Fn`, not `FnOnce`, because a waiter that observes a
    /// failed flight re-derives its own typed error by decoding again.
    pub(crate) fn get_or_decode(
        &self,
        key: K,
        decode: impl Fn() -> Result<DecodedChunk, StoreError>,
    ) -> Result<DecodedChunk, StoreError> {
        let joined = {
            let mut st = self.lock();
            if let Some(chunk) = st.touch(key) {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(chunk);
            }
            match st.inflight.get(&key) {
                Some(f) => Some(Arc::clone(f)),
                None => {
                    st.inflight.insert(key, Arc::new(Flight::new()));
                    None
                }
            }
        };

        match joined {
            Some(flight) => {
                // Follower: park until the leader publishes.
                let mut fs = flight.state.lock().expect("flight lock poisoned");
                while matches!(*fs, FlightState::Pending) {
                    fs = flight.cv.wait(fs).expect("flight lock poisoned");
                }
                match &*fs {
                    FlightState::Done(chunk) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        self.counters.shared.fetch_add(1, Ordering::Relaxed);
                        Ok(chunk.clone())
                    }
                    FlightState::Failed => {
                        drop(fs);
                        // Re-derive the precise typed error for this caller.
                        self.counters.misses.fetch_add(1, Ordering::Relaxed);
                        decode()
                    }
                    FlightState::Pending => unreachable!("loop exits only on completion"),
                }
            }
            None => {
                // Leader: decode outside every lock, then publish. The
                // publish runs from a drop guard so it happens on *every*
                // exit path — in particular, if the decode panics (a codec
                // bug; typed failures return `Err`), the unwind still clears
                // the in-flight slot and flips the flight to `Failed`
                // instead of leaving every present and future requester of
                // this chunk parked on a `Pending` flight forever.
                struct Publish<'a, K: Eq + Hash + Copy> {
                    cache: &'a ChunkCache<K>,
                    key: K,
                    /// `Some` once the decode succeeded; `None` means the
                    /// decode failed or panicked.
                    outcome: Option<DecodedChunk>,
                }
                impl<K: Eq + Hash + Copy> Drop for Publish<'_, K> {
                    fn drop(&mut self) {
                        let flight = {
                            let mut st = self.cache.lock();
                            let flight = st
                                .inflight
                                .remove(&self.key)
                                .expect("leader's flight is registered");
                            if let Some(chunk) = &self.outcome {
                                self.cache.insert(&mut st, self.key, chunk.clone());
                            }
                            flight
                        };
                        let mut fs = flight.state.lock().expect("flight lock poisoned");
                        *fs = match self.outcome.take() {
                            Some(chunk) => FlightState::Done(chunk),
                            None => FlightState::Failed,
                        };
                        drop(fs);
                        flight.cv.notify_all();
                    }
                }
                let mut publish = Publish {
                    cache: self,
                    key,
                    outcome: None,
                };
                let res = decode();
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                if let Ok(chunk) = &res {
                    publish.outcome = Some(chunk.clone());
                }
                drop(publish);
                res
            }
        }
    }

    /// Records a corrupt chunk healed from parity on the serve path. Called
    /// from inside decode closures (which run outside the cache locks).
    pub(crate) fn note_repair(&self) {
        self.counters.repairs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a corrupt chunk parity could not heal.
    pub(crate) fn note_repair_failure(&self) {
        self.counters
            .repair_failures
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Bulk hit probe: one lock acquisition for the whole index list,
    /// returning the resident chunks and `None` for the rest. Only the hits
    /// are counted here — the caller resolves the `None`s through
    /// [`ChunkCache::get_or_decode`], which does its own accounting.
    pub(crate) fn get_resident(&self, keys: &[K]) -> Vec<Option<DecodedChunk>> {
        let mut st = self.lock();
        let out: Vec<Option<DecodedChunk>> = keys.iter().map(|&k| st.touch(k)).collect();
        drop(st);
        let hits = out.iter().filter(|o| o.is_some()).count() as u64;
        self.counters.hits.fetch_add(hits, Ordering::Relaxed);
        out
    }

    /// Inserts under the held lock, evicting LRU entries first so that
    /// `resident` never exceeds the budget at any instant. Chunks larger
    /// than the whole budget are served but never cached (budget 0 therefore
    /// caches nothing while single-flight keeps working).
    fn insert(&self, st: &mut CacheState<K>, key: K, chunk: DecodedChunk) {
        let bytes = chunk.resident_bytes();
        if bytes > self.budget {
            return;
        }
        while st.resident + bytes > self.budget {
            let (&stamp, &victim) = st
                .order
                .iter()
                .next()
                .expect("over budget implies a resident entry");
            st.order.remove(&stamp);
            let evicted = st
                .entries
                .remove(&victim)
                .expect("order and entries stay in lockstep");
            st.resident -= evicted.chunk.resident_bytes();
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let stamp = st.tick();
        st.order.insert(stamp, key);
        let prev = st.entries.insert(key, Entry { chunk, stamp });
        debug_assert!(prev.is_none(), "single-flight admits one leader per key");
        st.resident += bytes;
        st.peak = st.peak.max(st.resident);
    }

    /// Point-in-time stats snapshot. `requests` is derived as
    /// `hits + misses`, so the ledger identity holds in the snapshot even
    /// when lookups are mid-flight on other threads.
    pub(crate) fn stats(&self) -> CacheStats {
        let (resident, peak) = {
            let st = self.lock();
            (st.resident as u64, st.peak as u64)
        };
        let hits = self.counters.hits.load(Ordering::Relaxed);
        let misses = self.counters.misses.load(Ordering::Relaxed);
        CacheStats {
            requests: hits + misses,
            hits,
            shared: self.counters.shared.load(Ordering::Relaxed),
            misses,
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            resident_bytes: resident,
            peak_resident_bytes: peak,
            budget_bytes: self.budget as u64,
            repairs: self.counters.repairs.load(Ordering::Relaxed),
            repair_failures: self.counters.repair_failures.load(Ordering::Relaxed),
        }
    }

    /// Snapshot-and-reset in one step: returns the counters accumulated
    /// since the last reset and zeroes them, losing no concurrent
    /// increments (each counter is `swap`ped, so an increment lands either
    /// in the returned window or in the next one — never nowhere). The
    /// returned snapshot keeps the `requests == hits + misses` identity by
    /// construction. This is the export path for per-tenant stat windows.
    pub(crate) fn take_stats(&self) -> CacheStats {
        let (resident, peak) = {
            let mut st = self.lock();
            let pair = (st.resident as u64, st.peak as u64);
            st.peak = st.resident;
            pair
        };
        let hits = self.counters.hits.swap(0, Ordering::Relaxed);
        let misses = self.counters.misses.swap(0, Ordering::Relaxed);
        CacheStats {
            requests: hits + misses,
            hits,
            shared: self.counters.shared.swap(0, Ordering::Relaxed),
            misses,
            evictions: self.counters.evictions.swap(0, Ordering::Relaxed),
            resident_bytes: resident,
            peak_resident_bytes: peak,
            budget_bytes: self.budget as u64,
            repairs: self.counters.repairs.swap(0, Ordering::Relaxed),
            repair_failures: self.counters.repair_failures.swap(0, Ordering::Relaxed),
        }
    }

    /// Zeroes the counters and restarts the high-water mark from the current
    /// residency. Cache contents are untouched. Implemented as `swap`s so a
    /// concurrent increment is never lost — it simply lands in the fresh
    /// window.
    pub(crate) fn reset_stats(&self) {
        let mut st = self.lock();
        st.peak = st.resident;
        for c in [
            &self.counters.hits,
            &self.counters.shared,
            &self.counters.misses,
            &self.counters.evictions,
            &self.counters.repairs,
            &self.counters.repair_failures,
        ] {
            c.swap(0, Ordering::Relaxed);
        }
    }

    /// Drops every resident entry (counters and peak are kept).
    pub(crate) fn clear(&self) {
        let mut st = self.lock();
        st.entries.clear();
        st.order.clear();
        st.resident = 0;
    }
}
