//! Image smoothing/denoising baselines (Table I).
//!
//! The paper contrasts its error-bounded post-process against three classic
//! filters applied to decompressed data: a median filter, Gaussian blur and
//! anisotropic (Perona–Malik) diffusion. All three ignore the error-bounded
//! nature of the input and over-smooth scientific data, *lowering* PSNR —
//! that failure mode is exactly what the Table I experiment shows, so the
//! implementations here are the standard, faithful versions.

use hqmr_grid::Field3;
use rayon::prelude::*;

/// 3×3×3 median filter with edge clamping.
pub fn median3(field: &Field3) -> Field3 {
    let d = field.dims();
    let mut out = Field3::zeros(d);
    out.data_mut()
        .par_chunks_mut(d.ny * d.nz)
        .enumerate()
        .for_each(|(x, slab)| {
            let mut window = [0f32; 27];
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let mut k = 0;
                    for dx in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dz in -1i64..=1 {
                                window[k] = field.get_clamped(
                                    x as isize + dx as isize,
                                    y as isize + dy as isize,
                                    z as isize + dz as isize,
                                );
                                k += 1;
                            }
                        }
                    }
                    window.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                    slab[y * d.nz + z] = window[13];
                }
            }
        });
    out
}

/// Separable Gaussian blur with standard deviation `sigma` (kernel radius
/// `⌈3σ⌉`, edge clamping).
pub fn gaussian_blur(field: &Field3, sigma: f64) -> Field3 {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    let kernel: Vec<f64> = (-radius..=radius)
        .map(|i| (-(i * i) as f64 / (2.0 * sigma * sigma)).exp())
        .collect();
    let norm: f64 = kernel.iter().sum();
    let kernel: Vec<f64> = kernel.into_iter().map(|k| k / norm).collect();

    let d = field.dims();
    let pass = |input: &Field3, axis: usize| -> Field3 {
        let mut out = Field3::zeros(d);
        out.data_mut()
            .par_chunks_mut(d.ny * d.nz)
            .enumerate()
            .for_each(|(x, slab)| {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let mut acc = 0.0f64;
                        for (ki, &k) in kernel.iter().enumerate() {
                            let off = ki as i64 - radius;
                            let (sx, sy, sz) = match axis {
                                0 => (x as isize + off as isize, y as isize, z as isize),
                                1 => (x as isize, y as isize + off as isize, z as isize),
                                _ => (x as isize, y as isize, z as isize + off as isize),
                            };
                            acc += k * input.get_clamped(sx, sy, sz) as f64;
                        }
                        slab[y * d.nz + z] = acc as f32;
                    }
                }
            });
        out
    };
    let a = pass(field, 0);
    let b = pass(&a, 1);
    pass(&b, 2)
}

/// Perona–Malik anisotropic diffusion: `iterations` explicit Euler steps with
/// conduction `g(∇) = exp(−(∇/κ)²)` and time step `dt = 1/6` (stability limit
/// for the 6-neighbour Laplacian).
pub fn anisotropic_diffusion(field: &Field3, iterations: usize, kappa: f64) -> Field3 {
    assert!(kappa > 0.0, "kappa must be positive");
    let d = field.dims();
    let mut cur = field.clone();
    let dt = 1.0 / 6.0;
    for _ in 0..iterations {
        let mut next = Field3::zeros(d);
        let cur_ref = &cur;
        next.data_mut()
            .par_chunks_mut(d.ny * d.nz)
            .enumerate()
            .for_each(|(x, slab)| {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        let c = cur_ref.get(x, y, z) as f64;
                        let mut flux = 0.0f64;
                        let neighbours = [
                            (x as isize - 1, y as isize, z as isize),
                            (x as isize + 1, y as isize, z as isize),
                            (x as isize, y as isize - 1, z as isize),
                            (x as isize, y as isize + 1, z as isize),
                            (x as isize, y as isize, z as isize - 1),
                            (x as isize, y as isize, z as isize + 1),
                        ];
                        for (nx2, ny2, nz2) in neighbours {
                            let grad = cur_ref.get_clamped(nx2, ny2, nz2) as f64 - c;
                            let g = (-(grad / kappa).powi(2)).exp();
                            flux += g * grad;
                        }
                        slab[y * d.nz + z] = (c + dt * flux) as f32;
                    }
                }
            });
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    fn noisy_step() -> Field3 {
        // A step edge plus deterministic noise: good for testing both
        // smoothing and edge behaviour.
        Field3::from_fn(Dims3::cube(16), |x, y, z| {
            let step = if x < 8 { 0.0 } else { 10.0 };
            let noise = (((x * 131 + y * 31 + z * 7) % 17) as f32 - 8.0) * 0.05;
            step + noise
        })
    }

    /// Squared deviation from `reference` over the flat region x ∈ [2, 5)
    /// (away from the step edge, so edge smearing doesn't dominate).
    fn noise_energy(f: &Field3, reference: impl Fn(usize, usize, usize) -> f32) -> f64 {
        let d = f.dims();
        let mut acc = 0.0f64;
        for x in 2..5 {
            for y in 2..d.ny - 2 {
                for z in 2..d.nz - 2 {
                    acc += (f.get(x, y, z) - reference(x, y, z)).powi(2) as f64;
                }
            }
        }
        acc
    }

    #[test]
    fn median_removes_impulse_noise() {
        let mut f = Field3::new(Dims3::cube(8), 1.0);
        f.set(4, 4, 4, 100.0);
        let m = median3(&f);
        assert_eq!(m.get(4, 4, 4), 1.0);
        assert_eq!(m.get(1, 1, 1), 1.0);
    }

    #[test]
    fn median_preserves_constant() {
        let f = Field3::new(Dims3::cube(6), 3.5);
        let m = median3(&f);
        assert!(m.data().iter().all(|&v| v == 3.5));
    }

    #[test]
    fn gaussian_preserves_constant_and_reduces_noise() {
        let f = Field3::new(Dims3::cube(8), 2.0);
        let g = gaussian_blur(&f, 1.0);
        for &v in g.data() {
            assert!((v - 2.0).abs() < 1e-5);
        }
        let noisy = noisy_step();
        let sm = gaussian_blur(&noisy, 1.0);
        let step = |x: usize, _: usize, _: usize| if x < 8 { 0.0 } else { 10.0 };
        assert!(noise_energy(&sm, step) < noise_energy(&noisy, step) * 1.1);
    }

    #[test]
    fn gaussian_blurs_edges() {
        let noisy = noisy_step();
        let sm = gaussian_blur(&noisy, 2.0);
        // The step edge is smeared: midpoint values appear.
        let mid = sm.get(8, 8, 8);
        assert!(mid > 2.0 && mid < 8.0, "edge value {mid}");
    }

    #[test]
    fn diffusion_preserves_edges_better_than_gaussian() {
        let noisy = noisy_step();
        let diff = anisotropic_diffusion(&noisy, 10, 1.0);
        let gauss = gaussian_blur(&noisy, 2.0);
        // Edge contrast across the step (x = 7 vs x = 8).
        let contrast = |f: &Field3| (f.get(8, 8, 8) - f.get(7, 8, 8)).abs();
        assert!(
            contrast(&diff) > contrast(&gauss),
            "diffusion {} vs gaussian {}",
            contrast(&diff),
            contrast(&gauss)
        );
    }

    #[test]
    fn diffusion_zero_iterations_is_identity() {
        let f = noisy_step();
        assert_eq!(anisotropic_diffusion(&f, 0, 1.0), f);
    }

    #[test]
    fn filters_over_smooth_sharp_scientific_data() {
        // The Table I failure mode: on data whose "noise" is bounded
        // compression error (±0.05) around sharp legitimate features, heavy
        // filtering destroys the features and *increases* total error.
        let truth = Field3::from_fn(Dims3::cube(12), |x, y, z| {
            if (x + y + z) % 4 == 0 {
                5.0
            } else {
                0.0
            }
        });
        let mut decompressed = truth.clone();
        for (i, v) in decompressed.data_mut().iter_mut().enumerate() {
            *v += ((i % 3) as f32 - 1.0) * 0.05;
        }
        let blurred = gaussian_blur(&decompressed, 1.5);
        let err = |f: &Field3| {
            truth
                .data()
                .iter()
                .zip(f.data())
                .map(|(&a, &b)| (a - b).powi(2) as f64)
                .sum::<f64>()
        };
        assert!(err(&blurred) > 10.0 * err(&decompressed));
    }
}
