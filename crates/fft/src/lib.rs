//! Radix-2 complex FFT used by the `hqmr` workspace.
//!
//! The workflow needs an FFT twice:
//!
//! * **spectral synthesis** of the Gaussian-random-field proxies that stand in
//!   for the Nyx / RT datasets (see `hqmr-grid::synth`), and
//! * the **power-spectrum analysis** `P(k)` of Table VI, which compares the
//!   spectrum of decompressed cosmology data against the original for `k < 10`.
//!
//! Only power-of-two sizes are supported; every grid in the evaluation is a
//! power of two, mirroring the paper's 512³/256³ datasets.

mod complex;
mod plan;
mod transform;

pub use complex::Complex;
pub use plan::FftPlan;
pub use transform::{fft_1d, fft_3d, ifft_1d, ifft_3d, Direction};

/// Returns `true` when `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
/// Panics if `n` is not a power of two.
#[inline]
pub fn log2_exact(n: usize) -> u32 {
    assert!(is_pow2(n), "size {n} is not a power of two");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_checks() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(1023));
    }

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(512), 9);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_rejects_non_pow2() {
        log2_exact(12);
    }
}
