//! Minimal `f64` complex number, sufficient for FFT butterflies.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Constructs a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number embedded in the complex plane.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor with angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert!(close(a * b, Complex::new(5.0, 5.0)));
        assert!(close(-a, Complex::new(-1.0, -2.0)));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.3);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_mul_is_norm() {
        let a = Complex::new(3.0, 4.0);
        let n = a * a.conj();
        assert!((n.re - 25.0).abs() < 1e-12);
        assert!(n.im.abs() < 1e-12);
        assert!((a.abs() - 5.0).abs() < 1e-12);
    }
}
