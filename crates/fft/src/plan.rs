//! Precomputed FFT plan: twiddle factors and bit-reversal permutation.
//!
//! A plan is immutable after construction and can be shared across threads,
//! which lets the 3-D transform run its independent 1-D lines in parallel with
//! rayon without recomputing twiddles per line.

use crate::complex::Complex;
use crate::{is_pow2, log2_exact};

/// Reusable plan for transforms of a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Forward twiddles, laid out stage-by-stage: stage `s` (half-size `m = 2^s`)
    /// contributes `m` twiddles `e^{-iπ j/m}`, `j = 0..m`.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation of `0..n`.
    rev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for length-`n` transforms.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "FFT length {n} must be a power of two");
        let log2n = log2_exact(n);
        let mut twiddles = Vec::with_capacity(n.max(1));
        for s in 0..log2n {
            let m = 1usize << s; // half butterfly span at this stage
            let step = -std::f64::consts::PI / m as f64;
            for j in 0..m {
                twiddles.push(Complex::cis(step * j as f64));
            }
        }
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if log2n == 0 {
            rev[0] = 0;
        }
        FftPlan {
            n,
            log2n,
            twiddles,
            rev,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate length-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// log₂ of the transform length.
    #[inline]
    pub fn log2_len(&self) -> u32 {
        self.log2n
    }

    /// Twiddle slice for butterfly stage `s` (`0 ≤ s < log2_len`), of length `2^s`.
    #[inline]
    pub(crate) fn stage_twiddles(&self, s: u32) -> &[Complex] {
        let start = (1usize << s) - 1;
        let m = 1usize << s;
        &self.twiddles[start..start + m]
    }

    /// Bit-reversal permutation table.
    #[inline]
    pub(crate) fn rev(&self) -> &[u32] {
        &self.rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddle_layout() {
        let p = FftPlan::new(8);
        assert_eq!(p.len(), 8);
        assert_eq!(p.log2_len(), 3);
        // Stage 0 has a single trivial twiddle.
        assert_eq!(p.stage_twiddles(0).len(), 1);
        assert!((p.stage_twiddles(0)[0].re - 1.0).abs() < 1e-15);
        // Stage 2 has 4 twiddles, the second of which is e^{-iπ/4}.
        let t = p.stage_twiddles(2);
        assert_eq!(t.len(), 4);
        let expect = Complex::cis(-std::f64::consts::FRAC_PI_4);
        assert!((t[1].re - expect.re).abs() < 1e-15);
        assert!((t[1].im - expect.im).abs() < 1e-15);
    }

    #[test]
    fn bit_reversal_table() {
        let p = FftPlan::new(8);
        assert_eq!(p.rev(), &[0, 4, 2, 6, 1, 5, 3, 7]);
        let p1 = FftPlan::new(1);
        assert_eq!(p1.rev(), &[0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        FftPlan::new(6);
    }
}
