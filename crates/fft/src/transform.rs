//! In-place iterative radix-2 FFT, 1-D and 3-D.

use crate::complex::Complex;
use crate::plan::FftPlan;
use rayon::prelude::*;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = Σ x_j e^{-2πi jk/n}` (no scaling).
    Forward,
    /// `x_j = (1/n) Σ X_k e^{+2πi jk/n}` (scales by `1/n`).
    Inverse,
}

/// In-place 1-D FFT of `data` using `plan`.
///
/// # Panics
/// Panics if `data.len() != plan.len()`.
pub fn fft_1d(plan: &FftPlan, data: &mut [Complex], dir: Direction) {
    assert_eq!(data.len(), plan.len(), "data length must match plan");
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Conjugate trick for the inverse: IFFT(x) = conj(FFT(conj(x))) / n.
    if dir == Direction::Inverse {
        for z in data.iter_mut() {
            *z = z.conj();
        }
    }
    // Bit-reversal permutation.
    for (i, &r) in plan.rev().iter().enumerate() {
        let j = r as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    for s in 0..plan.log2_len() {
        let m = 1usize << s; // half span
        let tw = plan.stage_twiddles(s);
        let span = m << 1;
        let mut base = 0;
        while base < n {
            for j in 0..m {
                let t = tw[j] * data[base + j + m];
                let u = data[base + j];
                data[base + j] = u + t;
                data[base + j + m] = u - t;
            }
            base += span;
        }
    }
    if dir == Direction::Inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.conj().scale(scale);
        }
    }
}

/// Convenience inverse 1-D FFT.
pub fn ifft_1d(plan: &FftPlan, data: &mut [Complex]) {
    fft_1d(plan, data, Direction::Inverse);
}

/// In-place 3-D FFT over a contiguous row-major array of shape `(nx, ny, nz)`
/// where `z` is the fastest-varying index (`idx = (x*ny + y)*nz + z`).
///
/// Applies 1-D transforms along z, then y, then x. Lines are processed in
/// parallel with rayon — they are independent, so this is a textbook
/// `par_chunks_mut` fan-out.
///
/// # Panics
/// Panics if `data.len() != nx*ny*nz` or any extent is not a power of two.
pub fn fft_3d(data: &mut [Complex], nx: usize, ny: usize, nz: usize, dir: Direction) {
    assert_eq!(data.len(), nx * ny * nz, "shape mismatch");
    let plan_z = FftPlan::new(nz);
    // z lines are contiguous.
    data.par_chunks_mut(nz)
        .for_each(|line| fft_1d(&plan_z, line, dir));

    // y lines: stride nz within each x-slab. Gather into scratch per line.
    let plan_y = FftPlan::new(ny);
    data.par_chunks_mut(ny * nz).for_each(|slab| {
        let mut scratch = vec![Complex::ZERO; ny];
        for z in 0..nz {
            for y in 0..ny {
                scratch[y] = slab[y * nz + z];
            }
            fft_1d(&plan_y, &mut scratch, dir);
            for y in 0..ny {
                slab[y * nz + z] = scratch[y];
            }
        }
    });

    // x lines: stride ny*nz. Parallelize over (y,z) by transposing into
    // per-thread scratch. We chunk the yz plane.
    let plan_x = FftPlan::new(nx);
    let stride = ny * nz;
    let yz = ny * nz;
    // Copy out columns in parallel via index math on an immutable snapshot is
    // not possible in place; instead process disjoint yz indices with unsafe-free
    // approach: operate on raw pointer alternative — we use a transpose buffer.
    let mut cols: Vec<Complex> = vec![Complex::ZERO; data.len()];
    // cols layout: (y*nz + z) * nx + x  — x contiguous.
    cols.par_chunks_mut(nx).enumerate().for_each(|(c, line)| {
        for (x, v) in line.iter_mut().enumerate() {
            *v = data[x * stride + c];
        }
        fft_1d(&plan_x, line, dir);
    });
    // Scatter back.
    data.par_chunks_mut(yz).enumerate().for_each(|(x, slab)| {
        for c in 0..yz {
            slab[c] = cols[c * nx + x];
        }
    });
}

/// Convenience inverse 3-D FFT.
pub fn ifft_3d(data: &mut [Complex], nx: usize, ny: usize, nz: usize) {
    fft_3d(data, nx, ny, nz, Direction::Inverse);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT for cross-checking.
    fn dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    acc += x * Complex::cis(theta);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch: {x:?} vs {y:?}"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 * 0.37 - 1.0, (i as f64 * 0.11).sin()))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let input = ramp(n);
            let mut fast = input.clone();
            let plan = FftPlan::new(n);
            fft_1d(&plan, &mut fast, Direction::Forward);
            let slow = dft(&input);
            assert_close(&fast, &slow, 1e-9);
        }
    }

    #[test]
    fn roundtrip_1d() {
        let n = 128;
        let input = ramp(n);
        let mut data = input.clone();
        let plan = FftPlan::new(n);
        fft_1d(&plan, &mut data, Direction::Forward);
        ifft_1d(&plan, &mut data);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn parseval_1d() {
        let n = 256;
        let input = ramp(n);
        let mut freq = input.clone();
        let plan = FftPlan::new(n);
        fft_1d(&plan, &mut freq, Direction::Forward);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn impulse_is_flat() {
        let n = 32;
        let mut data = vec![Complex::ZERO; n];
        data[0] = Complex::ONE;
        let plan = FftPlan::new(n);
        fft_1d(&plan, &mut data, Direction::Forward);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_3d() {
        let (nx, ny, nz) = (8, 4, 16);
        let input: Vec<Complex> = (0..nx * ny * nz)
            .map(|i| Complex::new((i as f64 * 0.61).cos(), (i as f64 * 0.23).sin()))
            .collect();
        let mut data = input.clone();
        fft_3d(&mut data, nx, ny, nz, Direction::Forward);
        ifft_3d(&mut data, nx, ny, nz);
        assert_close(&data, &input, 1e-10);
    }

    #[test]
    fn plane_wave_3d_is_single_bin() {
        let (nx, ny, nz) = (8, 8, 8);
        let (kx, ky, kz) = (2usize, 3usize, 1usize);
        let mut data = vec![Complex::ZERO; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let phase = 2.0 * std::f64::consts::PI * (kx * x) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (ky * y) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (kz * z) as f64 / nz as f64;
                    data[(x * ny + y) * nz + z] = Complex::cis(phase);
                }
            }
        }
        fft_3d(&mut data, nx, ny, nz, Direction::Forward);
        let total = (nx * ny * nz) as f64;
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let v = data[(x * ny + y) * nz + z];
                    let expect = if (x, y, z) == (kx, ky, kz) {
                        total
                    } else {
                        0.0
                    };
                    assert!(
                        (v.re - expect).abs() < 1e-8 && v.im.abs() < 1e-8,
                        "bin ({x},{y},{z}) = {v:?}, expected {expect}"
                    );
                }
            }
        }
    }
}
