//! Runtime-dispatched SIMD kernels: fixed-point scaling and lifting sweeps.
//!
//! Every variant is bit-identical to the scalar code it shadows. For the
//! integer lifting that is immediate (two's-complement arithmetic has one
//! answer); for the scaling loop it holds because each lane evaluates exactly
//! the scalar expression sequence — `(v as f64) * scale`, add of
//! `copysign(0.5, x)`, truncate — with no FMA contraction and no
//! reassociation, and the two rare guards of
//! [`hqmr_codec::round_ties_away_i64`] are reproduced: the `|x| ≥ 2⁵²` guard
//! cannot fire here (block-floating-point scaling bounds `|x| < 2³⁰`, argued
//! at the call site), and the `|x| == nextDown(0.5)` tie guard is applied as
//! a lane mask. Pinned by [`tests`] and the stream-level differential suite.

use hqmr_codec::round_ties_away_i64;

/// The scalar fixed-point scaling loop — the oracle arm, used verbatim by
/// `reference::compress`.
pub fn scale_block_scalar(vals: &[f32; 64], ints: &mut [i64; 64], scale: f64) {
    for (i, &v) in vals.iter().enumerate() {
        ints[i] = round_ties_away_i64(v as f64 * scale);
    }
}

/// Fixed-point scaling `ints[i] = round_ties_away(vals[i] as f64 * scale)`,
/// dispatched on [`hqmr_codec::kernels::simd_level`].
pub fn scale_block(vals: &[f32; 64], ints: &mut [i64; 64], scale: f64) {
    match hqmr_codec::kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Avx2 => unsafe { x86::scale_block_avx2(vals, ints, scale) },
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Sse2 => unsafe { x86::scale_block_sse2(vals, ints, scale) },
        _ => scale_block_scalar(vals, ints, scale),
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use crate::transform::COEFF_POS;
    use std::arch::x86_64::*;

    /// `nextDown(0.5)` — the tie the scalar rounding guards against.
    const TIE: f64 = 0.499_999_999_999_999_94;

    /// AVX2 arm of [`super::scale_block`].
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_block_avx2(vals: &[f32; 64], ints: &mut [i64; 64], scale: f64) {
        let sign = _mm256_set1_pd(-0.0);
        let half = _mm256_set1_pd(0.5);
        let tie = _mm256_set1_pd(TIE);
        let s = _mm256_set1_pd(scale);
        for i in (0..64).step_by(4) {
            let v = _mm256_cvtps_pd(_mm_loadu_ps(vals.as_ptr().add(i)));
            let x = _mm256_mul_pd(v, s);
            let t = _mm256_add_pd(x, _mm256_or_pd(_mm256_and_pd(x, sign), half));
            let narrow = _mm256_cvttpd_epi32(t); // |t| < 2³¹: exact i32 truncation
            let mut wide = _mm256_cvtepi32_epi64(narrow);
            // Tie lanes (|x| == nextDown(0.5)) round to 0, not ±1.
            let is_tie = _mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_andnot_pd(sign, x), tie);
            wide = _mm256_andnot_si256(_mm256_castpd_si256(is_tie), wide);
            _mm256_storeu_si256(ints.as_mut_ptr().add(i) as *mut __m256i, wide);
        }
    }

    /// SSE2 arm of [`super::scale_block`] (two lanes per step).
    ///
    /// # Safety
    /// SSE2 is part of the x86-64 baseline; the raw pointer arithmetic stays
    /// inside the fixed-size arrays.
    pub unsafe fn scale_block_sse2(vals: &[f32; 64], ints: &mut [i64; 64], scale: f64) {
        let sign = _mm_set1_pd(-0.0);
        let half = _mm_set1_pd(0.5);
        let tie = _mm_set1_pd(TIE);
        let s = _mm_set1_pd(scale);
        for i in (0..64).step_by(2) {
            let v = _mm_cvtps_pd(_mm_castsi128_ps(_mm_loadl_epi64(
                vals.as_ptr().add(i) as *const __m128i
            )));
            let x = _mm_mul_pd(v, s);
            let t = _mm_add_pd(x, _mm_or_pd(_mm_and_pd(x, sign), half));
            let narrow = _mm_cvttpd_epi32(t); // 2 × i32 in the low half
            let mut wide = _mm_unpacklo_epi32(narrow, _mm_srai_epi32(narrow, 31));
            let is_tie = _mm_cmpeq_pd(_mm_andnot_pd(sign, x), tie);
            wide = _mm_andnot_si128(_mm_castpd_si128(is_tie), wide);
            _mm_storeu_si128(ints.as_mut_ptr().add(i) as *mut __m128i, wide);
        }
    }

    // ---- lifting sweeps ---------------------------------------------------

    /// Vector `s_fwd`: `(a, b) → (a + ((b−a) >> 1), b−a)`. The arithmetic
    /// `>> 1` is emulated as logical shift + sign-bit restore (AVX2 has no
    /// 64-bit arithmetic shift).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn s_fwd_v(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let d = _mm256_sub_epi64(b, a);
        let half = _mm256_or_si256(
            _mm256_srli_epi64(d, 1),
            _mm256_and_si256(d, _mm256_set1_epi64x(i64::MIN)),
        );
        (_mm256_add_epi64(a, half), d)
    }

    /// Vector inverse of [`s_fwd_v`].
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn s_inv_v(avg: __m256i, d: __m256i) -> (__m256i, __m256i) {
        let half = _mm256_or_si256(
            _mm256_srli_epi64(d, 1),
            _mm256_and_si256(d, _mm256_set1_epi64x(i64::MIN)),
        );
        let a = _mm256_sub_epi64(avg, half);
        (a, _mm256_add_epi64(a, d))
    }

    /// 4×4 i64 transpose: rows in, columns out.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose4x4(
        r0: __m256i,
        r1: __m256i,
        r2: __m256i,
        r3: __m256i,
    ) -> (__m256i, __m256i, __m256i, __m256i) {
        let t0 = _mm256_unpacklo_epi64(r0, r1);
        let t1 = _mm256_unpackhi_epi64(r0, r1);
        let t2 = _mm256_unpacklo_epi64(r2, r3);
        let t3 = _mm256_unpackhi_epi64(r2, r3);
        (
            _mm256_permute2x128_si256(t0, t2, 0x20),
            _mm256_permute2x128_si256(t1, t3, 0x20),
            _mm256_permute2x128_si256(t0, t2, 0x31),
            _mm256_permute2x128_si256(t1, t3, 0x31),
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load4(p: *const i64) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store4(p: *mut i64, v: __m256i) {
        _mm256_storeu_si256(p as *mut __m256i, v)
    }

    /// AVX2 arm of the forward transform (same sweeps as the scalar fused
    /// version: z and y lift in place, x scatters into frequency order).
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn fwd_transform3_avx2(block: &mut [i64; 64]) {
        let p = block.as_mut_ptr();
        // Along z (stride 1): 4 contiguous lines per iteration, transposed so
        // each register holds one element position across the 4 lines.
        for base in (0..64).step_by(16) {
            let (c0, c1, c2, c3) = transpose4x4(
                load4(p.add(base)),
                load4(p.add(base + 4)),
                load4(p.add(base + 8)),
                load4(p.add(base + 12)),
            );
            let (a0, d0) = s_fwd_v(c0, c1);
            let (a1, d1) = s_fwd_v(c2, c3);
            let (a, dd) = s_fwd_v(a0, a1);
            let (o0, o1, o2, o3) = transpose4x4(a, dd, d0, d1);
            store4(p.add(base), o0);
            store4(p.add(base + 4), o1);
            store4(p.add(base + 8), o2);
            store4(p.add(base + 12), o3);
        }
        // Along y (stride 4): lanes are the four z positions, no transpose.
        for x in 0..4 {
            let b = x * 16;
            let (a0, d0) = s_fwd_v(load4(p.add(b)), load4(p.add(b + 4)));
            let (a1, d1) = s_fwd_v(load4(p.add(b + 8)), load4(p.add(b + 12)));
            let (a, dd) = s_fwd_v(a0, a1);
            store4(p.add(b), a);
            store4(p.add(b + 4), dd);
            store4(p.add(b + 8), d0);
            store4(p.add(b + 12), d1);
        }
        // Along x (stride 16): lanes are four yz positions; the frequency
        // reorder is an arbitrary permutation, so outputs land in temporaries
        // and scatter scalar.
        let mut out = [0i64; 64];
        for yz0 in (0..16).step_by(4) {
            let (a0, d0) = s_fwd_v(load4(p.add(yz0)), load4(p.add(yz0 + 16)));
            let (a1, d1) = s_fwd_v(load4(p.add(yz0 + 32)), load4(p.add(yz0 + 48)));
            let (a, dd) = s_fwd_v(a0, a1);
            let mut ta = [0i64; 4];
            let mut tdd = [0i64; 4];
            let mut td0 = [0i64; 4];
            let mut td1 = [0i64; 4];
            store4(ta.as_mut_ptr(), a);
            store4(tdd.as_mut_ptr(), dd);
            store4(td0.as_mut_ptr(), d0);
            store4(td1.as_mut_ptr(), d1);
            for l in 0..4 {
                let yz = yz0 + l;
                out[COEFF_POS[yz] as usize] = ta[l];
                out[COEFF_POS[yz + 16] as usize] = tdd[l];
                out[COEFF_POS[yz + 32] as usize] = td0[l];
                out[COEFF_POS[yz + 48] as usize] = td1[l];
            }
        }
        *block = out;
    }

    /// AVX2 arm of the inverse transform.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn inv_transform3_avx2(block: &mut [i64; 64]) {
        let mut out = [0i64; 64];
        let o = out.as_mut_ptr();
        // Along x: gather each coefficient from its frequency slot (scalar
        // gather — arbitrary permutation), lift as vectors of yz lanes.
        for yz0 in (0..16).step_by(4) {
            let mut ga = [0i64; 4];
            let mut gdd = [0i64; 4];
            let mut gd0 = [0i64; 4];
            let mut gd1 = [0i64; 4];
            for l in 0..4 {
                let yz = yz0 + l;
                ga[l] = block[COEFF_POS[yz] as usize];
                gdd[l] = block[COEFF_POS[yz + 16] as usize];
                gd0[l] = block[COEFF_POS[yz + 32] as usize];
                gd1[l] = block[COEFF_POS[yz + 48] as usize];
            }
            let (a0, a1) = s_inv_v(load4(ga.as_ptr()), load4(gdd.as_ptr()));
            let (p0, p1) = s_inv_v(a0, load4(gd0.as_ptr()));
            let (p2, p3) = s_inv_v(a1, load4(gd1.as_ptr()));
            store4(o.add(yz0), p0);
            store4(o.add(yz0 + 16), p1);
            store4(o.add(yz0 + 32), p2);
            store4(o.add(yz0 + 48), p3);
        }
        // Along y (stride 4), in place.
        for x in 0..4 {
            let b = x * 16;
            let (a0, a1) = s_inv_v(load4(o.add(b)), load4(o.add(b + 4)));
            let (p0, p1) = s_inv_v(a0, load4(o.add(b + 8)));
            let (p2, p3) = s_inv_v(a1, load4(o.add(b + 12)));
            store4(o.add(b), p0);
            store4(o.add(b + 4), p1);
            store4(o.add(b + 8), p2);
            store4(o.add(b + 12), p3);
        }
        // Along z (stride 1): transpose 4 lines, lift, transpose back.
        for base in (0..64).step_by(16) {
            let (c0, c1, c2, c3) = transpose4x4(
                load4(o.add(base)),
                load4(o.add(base + 4)),
                load4(o.add(base + 8)),
                load4(o.add(base + 12)),
            );
            let (a0, a1) = s_inv_v(c0, c1);
            let (p0, p1) = s_inv_v(a0, c2);
            let (p2, p3) = s_inv_v(a1, c3);
            let (r0, r1, r2, r3) = transpose4x4(p0, p1, p2, p3);
            store4(o.add(base), r0);
            store4(o.add(base + 4), r1);
            store4(o.add(base + 8), r2);
            store4(o.add(base + 12), r3);
        }
        *block = out;
    }

    // SSE2 (two i64 lanes) analogs of the sweeps above.

    #[inline]
    unsafe fn s_fwd_v2(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
        let d = _mm_sub_epi64(b, a);
        let half = _mm_or_si128(
            _mm_srli_epi64(d, 1),
            _mm_and_si128(d, _mm_set1_epi64x(i64::MIN)),
        );
        (_mm_add_epi64(a, half), d)
    }

    #[inline]
    unsafe fn s_inv_v2(avg: __m128i, d: __m128i) -> (__m128i, __m128i) {
        let half = _mm_or_si128(
            _mm_srli_epi64(d, 1),
            _mm_and_si128(d, _mm_set1_epi64x(i64::MIN)),
        );
        let a = _mm_sub_epi64(avg, half);
        (a, _mm_add_epi64(a, d))
    }

    #[inline]
    unsafe fn load2(p: *const i64) -> __m128i {
        _mm_loadu_si128(p as *const __m128i)
    }

    #[inline]
    unsafe fn store2(p: *mut i64, v: __m128i) {
        _mm_storeu_si128(p as *mut __m128i, v)
    }

    /// SSE2 arm of the forward transform: the strided y and x sweeps run two
    /// lanes at a time; the stride-1 z sweep pairs two lines through 2×2
    /// unpack transposes.
    ///
    /// # Safety
    /// SSE2 baseline; pointer arithmetic stays inside the block.
    pub unsafe fn fwd_transform3_sse2(block: &mut [i64; 64]) {
        let p = block.as_mut_ptr();
        // Along z: two lines (8 contiguous elements) per iteration.
        for base in (0..64).step_by(8) {
            let l0a = load2(p.add(base)); // line0 e0,e1
            let l0b = load2(p.add(base + 2)); // line0 e2,e3
            let l1a = load2(p.add(base + 4));
            let l1b = load2(p.add(base + 6));
            let c0 = _mm_unpacklo_epi64(l0a, l1a); // e0 of both lines
            let c1 = _mm_unpackhi_epi64(l0a, l1a);
            let c2 = _mm_unpacklo_epi64(l0b, l1b);
            let c3 = _mm_unpackhi_epi64(l0b, l1b);
            let (a0, d0) = s_fwd_v2(c0, c1);
            let (a1, d1) = s_fwd_v2(c2, c3);
            let (a, dd) = s_fwd_v2(a0, a1);
            store2(p.add(base), _mm_unpacklo_epi64(a, dd));
            store2(p.add(base + 2), _mm_unpacklo_epi64(d0, d1));
            store2(p.add(base + 4), _mm_unpackhi_epi64(a, dd));
            store2(p.add(base + 6), _mm_unpackhi_epi64(d0, d1));
        }
        // Along y: lanes are z pairs.
        for x in 0..4 {
            for z in (0..4).step_by(2) {
                let b = x * 16 + z;
                let (a0, d0) = s_fwd_v2(load2(p.add(b)), load2(p.add(b + 4)));
                let (a1, d1) = s_fwd_v2(load2(p.add(b + 8)), load2(p.add(b + 12)));
                let (a, dd) = s_fwd_v2(a0, a1);
                store2(p.add(b), a);
                store2(p.add(b + 4), dd);
                store2(p.add(b + 8), d0);
                store2(p.add(b + 12), d1);
            }
        }
        // Along x, scattering into frequency order.
        let mut out = [0i64; 64];
        for yz0 in (0..16).step_by(2) {
            let (a0, d0) = s_fwd_v2(load2(p.add(yz0)), load2(p.add(yz0 + 16)));
            let (a1, d1) = s_fwd_v2(load2(p.add(yz0 + 32)), load2(p.add(yz0 + 48)));
            let (a, dd) = s_fwd_v2(a0, a1);
            let mut ta = [0i64; 2];
            let mut tdd = [0i64; 2];
            let mut td0 = [0i64; 2];
            let mut td1 = [0i64; 2];
            store2(ta.as_mut_ptr(), a);
            store2(tdd.as_mut_ptr(), dd);
            store2(td0.as_mut_ptr(), d0);
            store2(td1.as_mut_ptr(), d1);
            for l in 0..2 {
                let yz = yz0 + l;
                out[COEFF_POS[yz] as usize] = ta[l];
                out[COEFF_POS[yz + 16] as usize] = tdd[l];
                out[COEFF_POS[yz + 32] as usize] = td0[l];
                out[COEFF_POS[yz + 48] as usize] = td1[l];
            }
        }
        *block = out;
    }

    /// SSE2 arm of the inverse transform.
    ///
    /// # Safety
    /// SSE2 baseline; pointer arithmetic stays inside the block.
    pub unsafe fn inv_transform3_sse2(block: &mut [i64; 64]) {
        let mut out = [0i64; 64];
        let o = out.as_mut_ptr();
        for yz0 in (0..16).step_by(2) {
            let mut ga = [0i64; 2];
            let mut gdd = [0i64; 2];
            let mut gd0 = [0i64; 2];
            let mut gd1 = [0i64; 2];
            for l in 0..2 {
                let yz = yz0 + l;
                ga[l] = block[COEFF_POS[yz] as usize];
                gdd[l] = block[COEFF_POS[yz + 16] as usize];
                gd0[l] = block[COEFF_POS[yz + 32] as usize];
                gd1[l] = block[COEFF_POS[yz + 48] as usize];
            }
            let (a0, a1) = s_inv_v2(load2(ga.as_ptr()), load2(gdd.as_ptr()));
            let (p0, p1) = s_inv_v2(a0, load2(gd0.as_ptr()));
            let (p2, p3) = s_inv_v2(a1, load2(gd1.as_ptr()));
            store2(o.add(yz0), p0);
            store2(o.add(yz0 + 16), p1);
            store2(o.add(yz0 + 32), p2);
            store2(o.add(yz0 + 48), p3);
        }
        for x in 0..4 {
            for z in (0..4).step_by(2) {
                let b = x * 16 + z;
                let (a0, a1) = s_inv_v2(load2(o.add(b)), load2(o.add(b + 4)));
                let (p0, p1) = s_inv_v2(a0, load2(o.add(b + 8)));
                let (p2, p3) = s_inv_v2(a1, load2(o.add(b + 12)));
                store2(o.add(b), p0);
                store2(o.add(b + 4), p1);
                store2(o.add(b + 8), p2);
                store2(o.add(b + 12), p3);
            }
        }
        for base in (0..64).step_by(8) {
            let l0a = load2(o.add(base));
            let l0b = load2(o.add(base + 2));
            let l1a = load2(o.add(base + 4));
            let l1b = load2(o.add(base + 6));
            let c0 = _mm_unpacklo_epi64(l0a, l1a);
            let c1 = _mm_unpackhi_epi64(l0a, l1a);
            let c2 = _mm_unpacklo_epi64(l0b, l1b);
            let c3 = _mm_unpackhi_epi64(l0b, l1b);
            let (a0, a1) = s_inv_v2(c0, c1);
            let (p0, p1) = s_inv_v2(a0, c2);
            let (p2, p3) = s_inv_v2(a1, c3);
            store2(o.add(base), _mm_unpacklo_epi64(p0, p1));
            store2(o.add(base + 2), _mm_unpacklo_epi64(p2, p3));
            store2(o.add(base + 4), _mm_unpackhi_epi64(p0, p1));
            store2(o.add(base + 6), _mm_unpackhi_epi64(p2, p3));
        }
        *block = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splat_fields() -> Vec<([f32; 64], f64)> {
        let mut cases = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for c in 0..64 {
            let mut vals = [0f32; 64];
            for v in vals.iter_mut() {
                x = x.rotate_left(7).wrapping_mul(0x2545_F491_4F6C_DD1D);
                *v = ((x >> 40) as i32 as f32) / (1 << (c % 20)) as f32;
            }
            let maxabs = vals.iter().fold(0f32, |m, &v| m.max(v.abs()));
            if maxabs == 0.0 {
                continue;
            }
            let emax = (maxabs as f64).log2().floor() as i32;
            cases.push((vals, 2f64.powi(29 - emax)));
        }
        // Values engineered to land on the rounding tie.
        let mut tie = [0f32; 64];
        tie[0] = 0.5;
        tie[1] = -0.5;
        tie[2] = 1.0;
        cases.push((tie, 0.499_999_999_999_999_94));
        cases
    }

    #[test]
    fn scale_block_arms_match_scalar() {
        for (vals, scale) in splat_fields() {
            let mut want = [0i64; 64];
            scale_block_scalar(&vals, &mut want, scale);
            let mut got = [0i64; 64];
            scale_block(&vals, &mut got, scale);
            assert_eq!(got, want, "dispatched arm diverged (scale {scale:e})");
            #[cfg(target_arch = "x86_64")]
            {
                let mut sse = [0i64; 64];
                unsafe { x86::scale_block_sse2(&vals, &mut sse, scale) };
                assert_eq!(sse, want, "sse2 arm diverged (scale {scale:e})");
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut avx = [0i64; 64];
                    unsafe { x86::scale_block_avx2(&vals, &mut avx, scale) };
                    assert_eq!(avx, want, "avx2 arm diverged (scale {scale:e})");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn transform_arms_match_scalar() {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..200 {
            let mut blk = [0i64; 64];
            for v in blk.iter_mut() {
                x = x.rotate_left(13).wrapping_mul(0x2545_F491_4F6C_DD1D);
                *v = ((x >> 20) as i64 & ((1 << 32) - 1)) - (1 << 31);
            }
            let mut want_f = blk;
            crate::transform::reference::fwd_transform3(&mut want_f);
            let mut sse = blk;
            unsafe { x86::fwd_transform3_sse2(&mut sse) };
            assert_eq!(sse, want_f, "sse2 forward diverged");
            let mut want_i = want_f;
            crate::transform::reference::inv_transform3(&mut want_i);
            assert_eq!(want_i, blk);
            let mut sse_i = want_f;
            unsafe { x86::inv_transform3_sse2(&mut sse_i) };
            assert_eq!(sse_i, blk, "sse2 inverse diverged");
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut avx = blk;
                unsafe { x86::fwd_transform3_avx2(&mut avx) };
                assert_eq!(avx, want_f, "avx2 forward diverged");
                let mut avx_i = want_f;
                unsafe { x86::inv_transform3_avx2(&mut avx_i) };
                assert_eq!(avx_i, blk, "avx2 inverse diverged");
            }
        }
    }
}
