//! Whole-field fixed-accuracy compression on top of the block coder.

use crate::coder::{decode_block_ints, encode_block_ints, INTPREC};
use crate::transform::{fwd_transform3, inv_transform3};
use crate::{ZfpConfig, BLOCK, BLOCK_LEN};
use hqmr_codec::{
    check_stream_id, push_stream_id, read_uvarint, tag, write_uvarint, BitReader, BitWriter, Codec,
    CodecError, Container,
};
use hqmr_grid::{BlockGrid, Dims3, Field3};

/// ZFP's codec/stream id (also the per-stream section tag in MR containers).
pub const ZFP_CODEC_ID: u32 = tag(b"ZFPS");

const TAG_HEAD: u32 = tag(b"ZFHD");
const TAG_PAYLOAD: u32 = tag(b"ZFBP");

/// Fixed-point fraction bits: values are scaled so `|i| ≤ 2³⁰`.
const Q: i32 = 29;
/// Inverse-transform error amplification budget (bits). Chosen as the
/// smallest margin that keeps the tolerance guarantee strict across the test
/// corpus (like ZFP, the codec stays conservative: measured error typically
/// sits 4-10x under the tolerance — the "underestimation characteristic"
/// §III-B exploits when picking the a_zfp candidates).
const GUARD_BITS: i32 = 10;
/// Bias for the 16-bit on-stream exponent.
const EMAX_BIAS: i32 = 16384;

/// Decompression errors — the shared [`CodecError`] under ZFP's historical
/// name.
pub type ZfpError = CodecError;

/// Output of [`compress`].
#[derive(Debug, Clone)]
pub struct CompressResult {
    /// Serialized stream.
    pub bytes: Vec<u8>,
    /// Blocks skipped as all-below-tolerance.
    pub zero_blocks: usize,
}

impl CompressResult {
    /// Compression ratio versus raw `f32`.
    pub fn ratio(&self, n_points: usize) -> f64 {
        (n_points * 4) as f64 / self.bytes.len() as f64
    }
}

/// Bit planes to encode for a block with exponent `emax` under tolerance
/// exponent `minexp`; ≤ 0 means the whole block is below tolerance.
#[inline]
fn block_maxprec(emax: i32, minexp: i32) -> i32 {
    (emax - minexp + GUARD_BITS).min(INTPREC as i32)
}

/// Compresses `field` with the fixed-accuracy tolerance in `cfg`.
pub fn compress(field: &Field3, cfg: &ZfpConfig) -> CompressResult {
    let (c, zero_blocks) = compress_container(field, cfg);
    CompressResult {
        bytes: c.to_bytes(),
        zero_blocks,
    }
}

/// [`compress`] serializing into a caller-owned buffer (cleared first), so
/// per-chunk writers reuse one output allocation.
pub fn compress_into(field: &Field3, cfg: &ZfpConfig, out: &mut Vec<u8>) {
    out.clear();
    let (c, _) = compress_container(field, cfg);
    c.write_into(out);
}

/// The compression pipeline up to (but not including) serialization.
fn compress_container(field: &Field3, cfg: &ZfpConfig) -> (Container, usize) {
    compress_container_with(
        field,
        cfg,
        crate::simd::scale_block,
        fwd_transform3,
        encode_block_ints,
    )
}

/// [`compress_container`] parameterized over the fixed-point scaling, block
/// transform and bit-plane encoder, so the [`reference`] path reuses
/// everything but the kernels under test.
fn compress_container_with(
    field: &Field3,
    cfg: &ZfpConfig,
    scale_block: fn(&[f32; 64], &mut [i64; 64], f64),
    fwd: fn(&mut [i64; 64]),
    enc: fn(&mut BitWriter, &[i64; 64], u32),
) -> (Container, usize) {
    let dims = field.dims();
    let grid = BlockGrid::new(dims, BLOCK);
    let minexp = cfg.tol.log2().floor() as i32;
    let mut w = BitWriter::with_capacity(dims.len());
    let mut zero_blocks = 0usize;

    let mut vals = [0f32; BLOCK_LEN];
    let mut ints = [0i64; BLOCK_LEN];
    for blk in grid.iter() {
        // Gather with edge replication straight into the block scratch —
        // no per-block field allocation.
        field.extract_box_into(blk.origin, Dims3::cube(BLOCK), &mut vals);
        let maxabs = vals.iter().fold(0f32, |m, &v| m.max(v.abs()));
        if maxabs == 0.0 || !maxabs.is_finite() {
            w.write_bit(false);
            zero_blocks += 1;
            continue;
        }
        let emax = (maxabs as f64).log2().floor() as i32;
        let maxprec = block_maxprec(emax, minexp);
        if maxprec <= 0 {
            // Entire block below tolerance: 2^(emax+1) ≤ tol · 2^(1−GUARD) ≪ tol.
            w.write_bit(false);
            zero_blocks += 1;
            continue;
        }
        w.write_bit(true);
        w.write_bits((emax + EMAX_BIAS) as u64, 16);
        let scale = 2f64.powi(Q - emax);
        scale_block(&vals, &mut ints, scale);
        fwd(&mut ints);
        enc(&mut w, &ints, maxprec as u32);
    }

    let mut head = Vec::new();
    write_uvarint(&mut head, dims.nx as u64);
    write_uvarint(&mut head, dims.ny as u64);
    write_uvarint(&mut head, dims.nz as u64);
    head.extend_from_slice(&cfg.tol.to_le_bytes());

    let mut c = Container::new();
    push_stream_id(&mut c, ZFP_CODEC_ID);
    c.push(TAG_HEAD, head);
    c.push(TAG_PAYLOAD, w.finish());
    (c, zero_blocks)
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Field3, ZfpError> {
    let mut out = Field3::zeros(Dims3::new(0, 0, 0));
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned field (reshaped in place), so
/// per-chunk readers reuse one reconstruction buffer.
pub fn decompress_into(bytes: &[u8], out: &mut Field3) -> Result<(), ZfpError> {
    decompress_into_with(bytes, out, decode_block_ints, inv_transform3)
}

/// [`decompress_into`] parameterized over the bit-plane decoder and inverse
/// transform, so the [`reference`] path reuses everything but the kernels
/// under test.
fn decompress_into_with(
    bytes: &[u8],
    out: &mut Field3,
    decode: fn(&mut BitReader<'_>, u32) -> [i64; 64],
    inv: fn(&mut [i64; 64]),
) -> Result<(), ZfpError> {
    let c = Container::from_bytes(bytes)?;
    check_stream_id(&c, ZFP_CODEC_ID)?;
    let head = c.require(TAG_HEAD)?;
    let mut pos = 0usize;
    let nx = read_uvarint(head, &mut pos).ok_or(ZfpError::Malformed("dims"))? as usize;
    let ny = read_uvarint(head, &mut pos).ok_or(ZfpError::Malformed("dims"))? as usize;
    let nz = read_uvarint(head, &mut pos).ok_or(ZfpError::Malformed("dims"))? as usize;
    let tol_bytes = head.get(pos..pos + 8).ok_or(ZfpError::Malformed("tol"))?;
    let tol = f64::from_le_bytes(tol_bytes.try_into().unwrap());
    if !(tol.is_finite() && tol > 0.0) {
        return Err(ZfpError::Malformed("tol"));
    }
    let dims = Dims3::new(nx, ny, nz);
    let minexp = tol.log2().floor() as i32;
    let grid = BlockGrid::new(dims, BLOCK);
    let payload = c.require(TAG_PAYLOAD)?;
    let mut r = BitReader::new(payload);

    out.reshape(dims, 0.0);
    let mut fvals = [0f32; BLOCK_LEN];
    for blk in grid.iter() {
        if !r.read_bit() {
            continue; // zero block
        }
        let emax = r.read_bits(16) as i32 - EMAX_BIAS;
        let maxprec = block_maxprec(emax, minexp);
        if maxprec <= 0 {
            return Err(ZfpError::Malformed("nonzero block below tolerance"));
        }
        let mut ints = decode(&mut r, maxprec as u32);
        inv(&mut ints);
        let scale = 2f64.powi(emax - Q);
        for (f, &i) in fvals.iter_mut().zip(&ints) {
            *f = (i as f64 * scale) as f32;
        }
        // Write back through the clipping insert — cells past the domain
        // edge (the replicated gather padding) are dropped, no per-block
        // field temporaries.
        out.insert_box_from(blk.origin, Dims3::cube(BLOCK), &fvals);
    }
    if r.bit_pos() > payload.len() * 8 {
        return Err(ZfpError::Malformed("stream underrun"));
    }
    Ok(())
}

/// Pre-overhaul codec paths built on the reference transform and per-bit
/// plane decoder — full-stream differential oracles for the in-place/fused
/// kernels (the `bitio::reference` pattern).
pub mod reference {
    use super::*;

    /// [`super::compress`] built on the scalar scaling loop, the
    /// line-copying reference transform and the per-bit plane encoder —
    /// byte-identical output.
    pub fn compress(field: &Field3, cfg: &ZfpConfig) -> CompressResult {
        let (c, zero_blocks) = compress_container_with(
            field,
            cfg,
            crate::simd::scale_block_scalar,
            crate::transform::reference::fwd_transform3,
            crate::coder::reference::encode_block_ints,
        );
        CompressResult {
            bytes: c.to_bytes(),
            zero_blocks,
        }
    }

    /// [`super::decompress`] built on the reference plane decoder and
    /// inverse transform — same reconstructions, same typed errors.
    pub fn decompress(bytes: &[u8]) -> Result<Field3, ZfpError> {
        let mut out = Field3::zeros(Dims3::new(0, 0, 0));
        decompress_into_with(
            bytes,
            &mut out,
            crate::coder::reference::decode_block_ints,
            crate::transform::reference::inv_transform3,
        )?;
        Ok(out)
    }
}

/// ZFP as a pluggable [`Codec`] backend. ZFP's only run-time knob is the
/// tolerance, which arrives per call through the trait, so the codec itself
/// is a unit struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZfpCodec;

impl Codec for ZfpCodec {
    fn id(&self) -> u32 {
        ZFP_CODEC_ID
    }

    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress(&self, field: &Field3, eb: f64) -> Vec<u8> {
        compress(field, &ZfpConfig::new(eb)).bytes
    }

    fn decompress(&self, bytes: &[u8]) -> Result<Field3, CodecError> {
        decompress(bytes)
    }

    fn compress_into(&self, field: &Field3, eb: f64, out: &mut Vec<u8>) {
        compress_into(field, &ZfpConfig::new(eb), out);
    }

    fn decompress_into(&self, bytes: &[u8], out: &mut Field3) -> Result<(), CodecError> {
        decompress_into(bytes, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxprec_scales_with_exponent_gap() {
        assert_eq!(block_maxprec(0, -10), 20);
        assert_eq!(block_maxprec(15, -15), INTPREC as i32); // clamped
        assert!(block_maxprec(-30, -10) <= 0); // block below tolerance
    }

    #[test]
    fn zero_block_flag_roundtrip() {
        let mut f = Field3::zeros(Dims3::cube(8));
        f.set(0, 0, 0, 5.0);
        let r = compress(&f, &ZfpConfig::new(0.01));
        assert_eq!(r.zero_blocks, 7);
        let g = decompress(&r.bytes).unwrap();
        assert!((g.get(0, 0, 0) - 5.0).abs() <= 0.01);
        assert_eq!(g.get(7, 7, 7), 0.0);
    }

    #[test]
    fn subnormal_scale_blocks_dropped() {
        // A block whose magnitude sits far below tolerance must be culled.
        let f = Field3::new(Dims3::cube(4), 1e-30);
        let r = compress(&f, &ZfpConfig::new(1.0));
        assert_eq!(r.zero_blocks, 1);
        let g = decompress(&r.bytes).unwrap();
        assert_eq!(g.get(0, 0, 0), 0.0);
    }
}
