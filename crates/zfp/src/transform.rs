//! Exactly invertible block transform and coefficient ordering.
//!
//! A two-level S-transform (Haar lifting with floor rounding) along each of
//! the three dimensions. Each 4-vector `[p0, p1, p2, p3]` becomes
//! `[A, D, d0, d1]`: block average, second-level detail, first-level details.
//! Every step is integer lifting, so the inverse is bit-exact — full-precision
//! round-trips are lossless (unlike real ZFP's `>> 1` lifts, whose LSB loss we
//! deliberately avoid; see crate docs).

/// One Haar lifting pair: `(a, b) → (avg, diff)` with `avg = a + (diff >> 1)`.
#[inline]
fn s_fwd(a: i64, b: i64) -> (i64, i64) {
    let d = b - a;
    (a + (d >> 1), d)
}

/// Inverse of [`s_fwd`].
#[inline]
fn s_inv(avg: i64, d: i64) -> (i64, i64) {
    let a = avg - (d >> 1);
    (a, a + d)
}

/// Forward 4-point transform in place: `[p0,p1,p2,p3] → [A, D, d0, d1]`.
#[inline]
fn fwd4(p: &mut [i64; 4]) {
    let (a0, d0) = s_fwd(p[0], p[1]);
    let (a1, d1) = s_fwd(p[2], p[3]);
    let (a, dd) = s_fwd(a0, a1);
    *p = [a, dd, d0, d1];
}

/// Inverse of [`fwd4`].
#[inline]
fn inv4(p: &mut [i64; 4]) {
    let [a, dd, d0, d1] = *p;
    let (a0, a1) = s_inv(a, dd);
    let (p0, p1) = s_inv(a0, d0);
    let (p2, p3) = s_inv(a1, d1);
    *p = [p0, p1, p2, p3];
}

/// Per-position frequency level of the 4-point transform output.
const FREQ: [u8; 4] = [0, 1, 2, 2];

/// Coefficient visit order for bit-plane coding: ascending total frequency
/// `FREQ[x] + FREQ[y] + FREQ[z]` (low-frequency coefficients first, like
/// ZFP's precomputed permutation). Index layout: `i = (x*4 + y)*4 + z`.
pub const COEFF_ORDER: [u8; 64] = coeff_order();

const fn coeff_order() -> [u8; 64] {
    // Counting sort by total frequency (const-evaluable).
    let mut order = [0u8; 64];
    let mut pos = 0usize;
    let mut f = 0u8;
    while f <= 6 {
        let mut i = 0usize;
        while i < 64 {
            let x = i / 16;
            let y = (i / 4) % 4;
            let z = i % 4;
            if FREQ[x] + FREQ[y] + FREQ[z] == f {
                order[pos] = i as u8;
                pos += 1;
            }
            i += 1;
        }
        f += 1;
    }
    order
}

/// Position of transform-layout index `i` in the frequency ordering
/// (`COEFF_POS[COEFF_ORDER[o]] == o`) — the scatter map that lets the last
/// forward sweep write its outputs directly into frequency order.
pub(crate) const COEFF_POS: [u8; 64] = coeff_pos();

const fn coeff_pos() -> [u8; 64] {
    let mut pos = [0u8; 64];
    let mut o = 0usize;
    while o < 64 {
        pos[COEFF_ORDER[o] as usize] = o as u8;
        o += 1;
    }
    pos
}

/// Forward transform of a 4³ block (in place, layout `i = (x*4+y)*4+z`),
/// followed by reordering into frequency order.
///
/// Dispatches on [`hqmr_codec::kernels::simd_level`]: integer lifting has one
/// two's-complement answer, so the AVX2/SSE2 sweeps in `simd::x86` are
/// bit-identical to the scalar body by construction (pinned by the
/// differential tests).
pub fn fwd_transform3(block: &mut [i64; 64]) {
    match hqmr_codec::kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Avx2 => unsafe {
            crate::simd::x86::fwd_transform3_avx2(block)
        },
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Sse2 => unsafe {
            crate::simd::x86::fwd_transform3_sse2(block)
        },
        _ => fwd_transform3_scalar(block),
    }
}

/// The scalar arm of [`fwd_transform3`]: z and y sweeps lift in place through
/// direct indices (no per-4-group line copies); the x sweep fuses the
/// coefficient reorder by scattering its outputs straight to their
/// [`COEFF_ORDER`] positions.
pub(crate) fn fwd_transform3_scalar(block: &mut [i64; 64]) {
    // Along z (stride 1), in place.
    for base in (0..64).step_by(4) {
        let (a0, d0) = s_fwd(block[base], block[base + 1]);
        let (a1, d1) = s_fwd(block[base + 2], block[base + 3]);
        let (a, dd) = s_fwd(a0, a1);
        block[base] = a;
        block[base + 1] = dd;
        block[base + 2] = d0;
        block[base + 3] = d1;
    }
    // Along y (stride 4), in place.
    for x in 0..4 {
        for z in 0..4 {
            let base = x * 16 + z;
            let (a0, d0) = s_fwd(block[base], block[base + 4]);
            let (a1, d1) = s_fwd(block[base + 8], block[base + 12]);
            let (a, dd) = s_fwd(a0, a1);
            block[base] = a;
            block[base + 4] = dd;
            block[base + 8] = d0;
            block[base + 12] = d1;
        }
    }
    // Along x (stride 16), scattering outputs into frequency order.
    let mut out = [0i64; 64];
    for yz in 0..16 {
        let (a0, d0) = s_fwd(block[yz], block[yz + 16]);
        let (a1, d1) = s_fwd(block[yz + 32], block[yz + 48]);
        let (a, dd) = s_fwd(a0, a1);
        out[COEFF_POS[yz] as usize] = a;
        out[COEFF_POS[yz + 16] as usize] = dd;
        out[COEFF_POS[yz + 32] as usize] = d0;
        out[COEFF_POS[yz + 48] as usize] = d1;
    }
    *block = out;
}

/// Inverse of [`fwd_transform3`], dispatched like the forward direction.
pub fn inv_transform3(block: &mut [i64; 64]) {
    match hqmr_codec::kernels::simd_level() {
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Avx2 => unsafe {
            crate::simd::x86::inv_transform3_avx2(block)
        },
        #[cfg(target_arch = "x86_64")]
        hqmr_codec::kernels::SimdLevel::Sse2 => unsafe {
            crate::simd::x86::inv_transform3_sse2(block)
        },
        _ => inv_transform3_scalar(block),
    }
}

/// The scalar arm of [`inv_transform3`]: the x sweep gathers straight from
/// the frequency-ordered input (fusing the un-reorder), then y and z lift in
/// place.
pub(crate) fn inv_transform3_scalar(block: &mut [i64; 64]) {
    let mut out = [0i64; 64];
    // Along x (stride 16), reading each coefficient from its frequency slot.
    for yz in 0..16 {
        let a = block[COEFF_POS[yz] as usize];
        let dd = block[COEFF_POS[yz + 16] as usize];
        let d0 = block[COEFF_POS[yz + 32] as usize];
        let d1 = block[COEFF_POS[yz + 48] as usize];
        let (a0, a1) = s_inv(a, dd);
        let (p0, p1) = s_inv(a0, d0);
        let (p2, p3) = s_inv(a1, d1);
        out[yz] = p0;
        out[yz + 16] = p1;
        out[yz + 32] = p2;
        out[yz + 48] = p3;
    }
    // Along y (stride 4), in place.
    for x in 0..4 {
        for z in 0..4 {
            let base = x * 16 + z;
            let (a0, a1) = s_inv(out[base], out[base + 4]);
            let (p0, p1) = s_inv(a0, out[base + 8]);
            let (p2, p3) = s_inv(a1, out[base + 12]);
            out[base] = p0;
            out[base + 4] = p1;
            out[base + 8] = p2;
            out[base + 12] = p3;
        }
    }
    // Along z (stride 1), in place.
    for base in (0..64).step_by(4) {
        let (a0, a1) = s_inv(out[base], out[base + 1]);
        let (p0, p1) = s_inv(a0, out[base + 2]);
        let (p2, p3) = s_inv(a1, out[base + 3]);
        out[base] = p0;
        out[base + 1] = p1;
        out[base + 2] = p2;
        out[base + 3] = p3;
    }
    *block = out;
}

/// The pre-overhaul line-copying transforms, kept verbatim as differential
/// oracles for the in-place/fused kernels.
pub mod reference {
    use super::{fwd4, inv4, COEFF_ORDER};

    /// Original [`super::fwd_transform3`]: per-4-group line copies plus a
    /// separate reorder pass.
    pub fn fwd_transform3(block: &mut [i64; 64]) {
        let mut line = [0i64; 4];
        // Along z (stride 1).
        for base in (0..64).step_by(4) {
            line.copy_from_slice(&block[base..base + 4]);
            fwd4(&mut line);
            block[base..base + 4].copy_from_slice(&line);
        }
        // Along y (stride 4).
        for x in 0..4 {
            for z in 0..4 {
                let base = x * 16 + z;
                for (i, l) in line.iter_mut().enumerate() {
                    *l = block[base + 4 * i];
                }
                fwd4(&mut line);
                for (i, &l) in line.iter().enumerate() {
                    block[base + 4 * i] = l;
                }
            }
        }
        // Along x (stride 16).
        for yz in 0..16 {
            for (i, l) in line.iter_mut().enumerate() {
                *l = block[yz + 16 * i];
            }
            fwd4(&mut line);
            for (i, &l) in line.iter().enumerate() {
                block[yz + 16 * i] = l;
            }
        }
        // Reorder into frequency order.
        let copy = *block;
        for (o, &src) in COEFF_ORDER.iter().enumerate() {
            block[o] = copy[src as usize];
        }
    }

    /// Original [`super::inv_transform3`].
    pub fn inv_transform3(block: &mut [i64; 64]) {
        // Undo the reordering.
        let copy = *block;
        for (o, &src) in COEFF_ORDER.iter().enumerate() {
            block[src as usize] = copy[o];
        }
        let mut line = [0i64; 4];
        // Inverse order of the forward sweeps.
        for yz in 0..16 {
            for (i, l) in line.iter_mut().enumerate() {
                *l = block[yz + 16 * i];
            }
            inv4(&mut line);
            for (i, &l) in line.iter().enumerate() {
                block[yz + 16 * i] = l;
            }
        }
        for x in 0..4 {
            for z in 0..4 {
                let base = x * 16 + z;
                for (i, l) in line.iter_mut().enumerate() {
                    *l = block[base + 4 * i];
                }
                inv4(&mut line);
                for (i, &l) in line.iter().enumerate() {
                    block[base + 4 * i] = l;
                }
            }
        }
        for base in (0..64).step_by(4) {
            line.copy_from_slice(&block[base..base + 4]);
            inv4(&mut line);
            block[base..base + 4].copy_from_slice(&line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifting_pair_is_exact() {
        for a in -20i64..20 {
            for b in -20i64..20 {
                let (avg, d) = s_fwd(a, b);
                assert_eq!(s_inv(avg, d), (a, b));
            }
        }
    }

    #[test]
    fn transform_roundtrip_is_lossless() {
        let mut block = [0i64; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as i64 * 7919 % 1000) - 500;
        }
        let orig = block;
        fwd_transform3(&mut block);
        inv_transform3(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn transform_roundtrip_extremes() {
        let mut block = [1i64 << 30; 64];
        block[13] = -(1i64 << 30);
        let orig = block;
        fwd_transform3(&mut block);
        // Growth stays within the guard bits (< 2^33).
        assert!(block.iter().all(|&v| v.abs() < (1i64 << 33)));
        inv_transform3(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn constant_block_concentrates_in_dc() {
        let mut block = [1000i64; 64];
        fwd_transform3(&mut block);
        assert_eq!(block[0], 1000);
        assert!(block[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn smooth_block_has_small_high_freq() {
        let mut block = [0i64; 64];
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    block[(x * 4 + y) * 4 + z] = (100 * x + 80 * y + 60 * z) as i64;
                }
            }
        }
        fwd_transform3(&mut block);
        // Energy concentrates at the front (low frequency) of the ordering.
        let front: i64 = block[..8].iter().map(|v| v.abs()).sum();
        let back: i64 = block[32..].iter().map(|v| v.abs()).sum();
        assert!(front > 4 * back, "front {front} back {back}");
    }

    #[test]
    fn fused_transforms_match_reference() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            let mut blk = [0i64; 64];
            for v in blk.iter_mut() {
                x = x.rotate_left(13).wrapping_mul(0x2545_F491_4F6C_DD1D);
                *v = ((x >> 20) as i64 & ((1 << 32) - 1)) - (1 << 31);
            }
            let mut a = blk;
            let mut b = blk;
            fwd_transform3(&mut a);
            reference::fwd_transform3(&mut b);
            assert_eq!(a, b, "forward transforms diverged");
            inv_transform3(&mut a);
            reference::inv_transform3(&mut b);
            assert_eq!(a, b, "inverse transforms diverged");
            assert_eq!(a, blk, "roundtrip lost data");
        }
    }

    #[test]
    fn coeff_order_is_permutation() {
        let mut seen = [false; 64];
        for &i in COEFF_ORDER.iter() {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // DC first.
        assert_eq!(COEFF_ORDER[0], 0);
    }
}
