//! ZFP-class transform codec.
//!
//! ZFP (§II-A) processes 4³ blocks independently: block-floating-point
//! alignment to a common exponent, a decorrelating transform along each
//! dimension, negabinary mapping, and embedded bit-plane coding with group
//! testing. Fixed-accuracy mode stops emitting bit planes once the requested
//! tolerance is guaranteed.
//!
//! **Substitution note (DESIGN.md §2):** ZFP's non-orthogonal lifted transform
//! is replaced by an *exactly invertible* two-level S-transform (Haar
//! lifting). This preserves the architecture the paper relies on — 4³
//! blocking artifacts, smooth blocks costing few bits, and actual error well
//! under the stated tolerance (the "underestimation characteristic" of
//! §III-B used when picking the `a_zfp` candidate set) — while making
//! round-trips bit-exact at full precision.

mod coder;
mod simd;
mod stream;
mod transform;

pub use coder::{decode_block_ints, encode_block_ints, INTPREC};
pub use stream::{
    compress, compress_into, decompress, decompress_into, CompressResult, ZfpCodec, ZfpError,
    ZFP_CODEC_ID,
};
pub use transform::{fwd_transform3, inv_transform3, COEFF_ORDER};

/// Pre-overhaul implementations (line-copying transforms, per-bit plane
/// decoder), kept verbatim as differential oracles for the in-place/fused
/// kernels (`tests/kernel_equivalence.rs`) and the `tables hotpath`
/// before/after rows — the `bitio::reference` pattern.
pub mod reference {
    pub use crate::coder::reference::{decode_block_ints, encode_block_ints};
    pub use crate::stream::reference::{compress, decompress};
    pub use crate::transform::reference::{fwd_transform3, inv_transform3};
}

/// ZFP configuration (fixed-accuracy mode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    /// Absolute error tolerance. The codec guarantees `|x − x̂| ≤ tol`.
    pub tol: f64,
}

impl ZfpConfig {
    /// Creates a fixed-accuracy configuration.
    ///
    /// # Panics
    /// Panics unless `tol` is positive and finite.
    pub fn new(tol: f64) -> Self {
        assert!(
            tol.is_finite() && tol > 0.0,
            "tolerance must be positive, got {tol}"
        );
        ZfpConfig { tol }
    }
}

/// Block side length (fixed by the format, like ZFP).
pub const BLOCK: usize = 4;
/// Values per block.
pub const BLOCK_LEN: usize = BLOCK * BLOCK * BLOCK;

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::{Dims3, Field3};

    fn max_err(a: &Field3, b: &Field3) -> f64 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .fold(0.0, f64::max)
    }

    fn wavy(dims: Dims3) -> Field3 {
        Field3::from_fn(dims, |x, y, z| {
            (x as f32 * 0.4).sin() * 3.0 + (y as f32 * 0.3).cos() * 2.0 + (z as f32 * 0.2).sin()
        })
    }

    #[test]
    fn roundtrip_respects_tolerance() {
        let f = wavy(Dims3::cube(16));
        for tol in [0.5, 0.05, 0.005, 5e-4] {
            let r = compress(&f, &ZfpConfig::new(tol));
            let g = decompress(&r.bytes).unwrap();
            let e = max_err(&f, &g);
            assert!(e <= tol, "tol={tol} err={e}");
        }
    }

    #[test]
    fn error_is_well_under_tolerance() {
        // The paper exploits ZFP's conservatism ("underestimation
        // characteristic", §III-B): actual max error sits well below the
        // requested tolerance — but not absurdly below, or the codec would
        // waste bits. Pin the calibrated window.
        let f = wavy(Dims3::cube(16));
        for tol in [0.5, 0.05, 0.005] {
            let r = compress(&f, &ZfpConfig::new(tol));
            let g = decompress(&r.bytes).unwrap();
            let e = max_err(&f, &g);
            assert!(e < tol * 0.6, "err {e} not well under tol {tol}");
            assert!(e > tol * 0.01, "err {e} suspiciously far under tol {tol}");
        }
    }

    #[test]
    fn partial_blocks_roundtrip() {
        let f = wavy(Dims3::new(5, 7, 9));
        let r = compress(&f, &ZfpConfig::new(0.01));
        let g = decompress(&r.bytes).unwrap();
        assert_eq!(g.dims(), f.dims());
        assert!(max_err(&f, &g) <= 0.01);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let f = Field3::from_fn(Dims3::cube(32), |x, y, z| (x + 2 * y + 3 * z) as f32 * 0.01);
        let r = compress(&f, &ZfpConfig::new(1e-3));
        assert!(r.ratio(f.len()) > 6.0, "cr = {}", r.ratio(f.len()));
    }

    #[test]
    fn constant_and_zero_fields_are_tiny() {
        let z = Field3::zeros(Dims3::cube(16));
        let r = compress(&z, &ZfpConfig::new(1e-6));
        assert!(r.ratio(z.len()) > 100.0);
        let g = decompress(&r.bytes).unwrap();
        assert_eq!(max_err(&z, &g), 0.0);

        let c = Field3::new(Dims3::cube(16), 123.5);
        let r = compress(&c, &ZfpConfig::new(1e-3));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&c, &g) <= 1e-3);
    }

    #[test]
    fn noise_bounded() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let f = Field3::from_fn(Dims3::new(12, 8, 20), |_, _, _| rng.gen_range(-1e4..1e4));
        for tol in [100.0, 1.0] {
            let r = compress(&f, &ZfpConfig::new(tol));
            let g = decompress(&r.bytes).unwrap();
            assert!(max_err(&f, &g) <= tol);
        }
    }

    #[test]
    fn mixed_magnitude_blocks_bounded() {
        // Exercises per-block exponents: one block huge, one tiny.
        let mut f = Field3::zeros(Dims3::cube(8));
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    f.set(x, y, z, 1e6 + (x * y * z) as f32);
                    f.set(x + 4, y + 4, z + 4, 1e-3 * (x + y + z) as f32);
                }
            }
        }
        let r = compress(&f, &ZfpConfig::new(0.5));
        let g = decompress(&r.bytes).unwrap();
        assert!(max_err(&f, &g) <= 0.5);
    }

    #[test]
    fn tighter_tolerance_costs_more_bits() {
        let f = wavy(Dims3::cube(16));
        let loose = compress(&f, &ZfpConfig::new(0.1));
        let tight = compress(&f, &ZfpConfig::new(1e-4));
        assert!(tight.bytes.len() > loose.bytes.len());
    }

    #[test]
    fn corrupted_stream_rejected() {
        let f = wavy(Dims3::cube(8));
        let r = compress(&f, &ZfpConfig::new(0.01));
        let mut bad = r.bytes.clone();
        let n = bad.len();
        bad[n - 2] ^= 0xFF;
        assert!(decompress(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_bad_tolerance() {
        ZfpConfig::new(-1.0);
    }
}
