//! Negabinary mapping and embedded bit-plane coding with group testing.
//!
//! Faithful transcription of ZFP's `encode_ints` / `decode_ints` loops: bit
//! planes are emitted most-significant first; within a plane, bits of already
//! significant coefficients are written verbatim and the remainder is
//! unary/group coded. Truncating the stream after any plane yields a coarser
//! but valid reconstruction — that is what fixed-accuracy mode exploits.

use hqmr_codec::{BitReader, BitWriter};

/// Bit planes carried per coefficient. Inputs are Q30 fixed point
/// (`|i| ≤ 2³⁰`) and the transform adds < 3 bits of growth, so negabinary
/// values fit comfortably in 36 bits.
pub const INTPREC: u32 = 36;

/// Negabinary mask (ZFP's `NBMASK`).
const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Two's complement → negabinary.
#[inline]
pub fn int2uint(x: i64) -> u64 {
    (x as u64).wrapping_add(NBMASK) ^ NBMASK
}

/// Negabinary → two's complement.
#[inline]
pub fn uint2int(x: u64) -> i64 {
    (x ^ NBMASK).wrapping_sub(NBMASK) as i64
}

/// Transposes a 64×64 bit matrix in place (`a[r]` bit `c` ↔ `a[c]` bit `r`),
/// by recursive block swaps — six masked exchange rounds instead of 4096
/// single-bit moves. Used to turn 64 negabinary coefficients into 64 ready
/// bit planes in one pass.
#[inline]
fn transpose_bits_64x64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k0 = 0usize;
        while k0 < 64 {
            for k in k0..k0 + j {
                // Swap row k's upper-half columns with row k+j's lower half.
                let t = ((a[k] >> j) ^ a[k + j]) & m;
                a[k] ^= t << j;
                a[k + j] ^= t;
            }
            k0 += 2 * j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Encodes the 64 transform coefficients down to bit plane `kmin`
/// (`kmin = INTPREC − maxprec`). Coefficients must already be in frequency
/// order.
///
/// Word-at-a-time rewrite of the per-bit loop kept as
/// [`reference::encode_block_ints`]: plane gathers become one bit-matrix
/// transpose up front (each plane is then a single word read), and the
/// unary/group-test emission walks set bits with `trailing_zeros`, writing
/// each `1 + zero-run + marker` group as one `write_bits` call — the exact
/// bit sequence of the reference loop, pinned by the differential tests.
pub fn encode_block_ints(w: &mut BitWriter, data: &[i64; 64], maxprec: u32) {
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut planes: [u64; 64] = std::array::from_fn(|i| int2uint(data[i]));
    transpose_bits_64x64(&mut planes);
    // planes[k] bit i == negabinary bit k of coefficient i.
    let mut n = 0usize; // coefficients significant so far
    for k in (kmin..INTPREC).rev() {
        let mut x = planes[k as usize];
        // Verbatim bits for already-significant coefficients.
        if n > 0 {
            w.write_bits(x, n as u32);
            x = if n >= 64 { 0 } else { x >> n };
        }
        // Unary run-length / group test for the rest, one write_bits per
        // group: the test '1', the zero run, and the terminating marker
        // (implicit at position 63, where the decoder stops unconditionally).
        let mut m = n;
        while m < 64 {
            if x == 0 {
                w.write_bit(false);
                break;
            }
            let g = x.trailing_zeros() as usize; // g ≤ 63 − m
            if m + g == 63 {
                w.write_bits(1, g as u32 + 1); // '1' + g zeros, no marker
                m = 64;
            } else {
                w.write_bits(1 | (1u64 << (g + 1)), g as u32 + 2);
                x >>= g + 1;
                m += g + 1;
            }
        }
        n = m;
    }
}

/// Decodes a block encoded by [`encode_block_ints`] with the same `maxprec`.
///
/// The unary run lengths of the group test are decoded word-at-a-time: a
/// `peek_bits`/`trailing_zeros` pair replaces the per-bit loop, consuming
/// exactly the same bits (the reader zero-pads past the end just like
/// `read_bit` returning `false`). Plane deposits walk set bits with
/// `trailing_zeros` instead of shifting through all 64 positions. Kept
/// observationally identical to [`reference::decode_block_ints`] — same
/// coefficients, same stream position — and pinned by differential tests.
pub fn decode_block_ints(r: &mut BitReader<'_>, maxprec: u32) -> [i64; 64] {
    let kmin = INTPREC.saturating_sub(maxprec);
    let mut ub = [0u64; 64];
    let mut n = 0usize;
    for k in (kmin..INTPREC).rev() {
        let mut x = if n > 0 { r.read_bits(n as u32) } else { 0 };
        let mut m = n;
        while m < 64 && r.read_bit() {
            // Unary run: count zeros until the marker 1, capped at position
            // 63 (whose marker is implicit).
            loop {
                let cap = 63 - m as u32;
                if cap == 0 {
                    break;
                }
                let width = cap.min(56);
                let window = r.peek_bits(width);
                if window == 0 {
                    r.consume(width);
                    m += width as usize;
                    continue;
                }
                let zeros = window.trailing_zeros();
                r.consume(zeros + 1);
                m += zeros as usize;
                break;
            }
            x |= 1u64 << m;
            m += 1;
        }
        n = m;
        // Deposit plane k: visit only the set bits.
        let mut bits = x;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            ub[i] |= 1u64 << k;
            bits &= bits - 1;
        }
    }
    std::array::from_fn(|i| uint2int(ub[i]))
}

/// The pre-overhaul per-bit coder loops, kept verbatim as the differential
/// oracles for the batched group-test decode and the transpose/word-at-a-time
/// encode.
pub mod reference {
    use super::{int2uint, uint2int, INTPREC};
    use hqmr_codec::{BitReader, BitWriter};

    /// Original [`super::encode_block_ints`]: per-coefficient plane gather,
    /// one `write_bit` per group-test and unary-run bit.
    pub fn encode_block_ints(w: &mut BitWriter, data: &[i64; 64], maxprec: u32) {
        let kmin = INTPREC.saturating_sub(maxprec);
        let ub: [u64; 64] = std::array::from_fn(|i| int2uint(data[i]));
        let mut n = 0usize; // coefficients significant so far
        for k in (kmin..INTPREC).rev() {
            // Step 1: gather bit plane k.
            let mut x = 0u64;
            for (i, &u) in ub.iter().enumerate() {
                x |= ((u >> k) & 1) << i;
            }
            // Step 2: verbatim bits for already-significant coefficients.
            if n > 0 {
                w.write_bits(x, n as u32);
                x = if n >= 64 { 0 } else { x >> n };
            }
            // Step 3: unary run-length / group test for the rest.
            let mut m = n;
            while m < 64 && {
                let any = x != 0;
                w.write_bit(any);
                any
            } {
                while m < 63 && {
                    let bit = x & 1 == 1;
                    w.write_bit(bit);
                    !bit
                } {
                    x >>= 1;
                    m += 1;
                }
                x >>= 1;
                m += 1;
            }
            n = m;
        }
    }

    /// Original [`super::decode_block_ints`]: one `read_bit` per group-test
    /// and unary-run bit, bit-by-bit plane deposit.
    pub fn decode_block_ints(r: &mut BitReader<'_>, maxprec: u32) -> [i64; 64] {
        let kmin = INTPREC.saturating_sub(maxprec);
        let mut ub = [0u64; 64];
        let mut n = 0usize;
        for k in (kmin..INTPREC).rev() {
            let mut x = if n > 0 { r.read_bits(n as u32) } else { 0 };
            let mut m = n;
            while m < 64 && r.read_bit() {
                while m < 63 && !r.read_bit() {
                    m += 1;
                }
                x |= 1u64 << m;
                m += 1;
            }
            n = m;
            // Deposit plane k.
            let mut i = 0usize;
            let mut bits = x;
            while bits != 0 {
                if bits & 1 == 1 {
                    ub[i] |= 1u64 << k;
                }
                bits >>= 1;
                i += 1;
            }
        }
        std::array::from_fn(|i| uint2int(ub[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negabinary_roundtrip() {
        for x in [
            -5i64,
            -1,
            0,
            1,
            2,
            1 << 32,
            -(1 << 32),
            (1 << 35) - 1,
            -(1 << 35),
        ] {
            assert_eq!(uint2int(int2uint(x)), x, "x = {x}");
        }
        // Small magnitudes stay small in negabinary.
        assert!(int2uint(0) == 0);
        assert!(int2uint(1) == 1);
        assert!(int2uint(-1) == 3);
    }

    #[test]
    fn full_precision_roundtrip_is_lossless() {
        let data: [i64; 64] =
            std::array::from_fn(|i| ((i as i64 * 2654435761) % (1 << 30)) - (1 << 29));
        let mut w = BitWriter::new();
        encode_block_ints(&mut w, &data, INTPREC);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = decode_block_ints(&mut r, INTPREC);
        assert_eq!(back, data);
    }

    #[test]
    fn truncated_precision_bounds_error() {
        let data: [i64; 64] = std::array::from_fn(|i| (i as i64 * 9176 % 100_000) - 50_000);
        for maxprec in [10u32, 16, 20, 28] {
            let mut w = BitWriter::new();
            encode_block_ints(&mut w, &data, maxprec);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let back = decode_block_ints(&mut r, maxprec);
            let kmin = INTPREC - maxprec;
            // Truncating negabinary below plane kmin perturbs each value by
            // less than 2^(kmin+1).
            let tol = 1i64 << (kmin + 1);
            for (a, b) in data.iter().zip(&back) {
                assert!((a - b).abs() < tol, "maxprec {maxprec}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_block_is_one_bit_per_plane() {
        let data = [0i64; 64];
        let mut w = BitWriter::new();
        encode_block_ints(&mut w, &data, INTPREC);
        assert_eq!(w.bit_len(), INTPREC as usize);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_block_ints(&mut r, INTPREC), data);
    }

    #[test]
    fn sparse_block_cheaper_than_dense() {
        let mut sparse = [0i64; 64];
        sparse[0] = 123_456;
        let dense: [i64; 64] = std::array::from_fn(|i| 123_456 + i as i64 * 999);
        let cost = |d: &[i64; 64]| {
            let mut w = BitWriter::new();
            encode_block_ints(&mut w, d, INTPREC);
            w.bit_len()
        };
        assert!(cost(&sparse) < cost(&dense) / 3);
    }

    #[test]
    fn single_significant_at_every_position() {
        // Exercises the group-test edge cases, including position 63.
        for pos in [0usize, 1, 31, 62, 63] {
            let mut data = [0i64; 64];
            data[pos] = -(1 << 20);
            let mut w = BitWriter::new();
            encode_block_ints(&mut w, &data, INTPREC);
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_block_ints(&mut r, INTPREC), data, "pos {pos}");
        }
    }

    #[test]
    fn word_at_a_time_encoder_matches_reference() {
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut rnd = |bits: u32| {
            x = x.rotate_left(11).wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((x >> 16) & ((1 << bits) - 1)) as i64 - (1 << (bits - 1))
        };
        for trial in 0..300 {
            // Mix dense, sparse and degenerate blocks across precisions.
            let mut data = [0i64; 64];
            match trial % 4 {
                0 => data.iter_mut().for_each(|v| *v = rnd(31)),
                1 => data[(trial / 4) % 64] = rnd(24),
                2 => data.iter_mut().step_by(7).for_each(|v| *v = rnd(12)),
                _ => {} // all zeros
            }
            for maxprec in [1u32, 7, 20, INTPREC] {
                let mut w = BitWriter::new();
                encode_block_ints(&mut w, &data, maxprec);
                let mut wr = BitWriter::new();
                reference::encode_block_ints(&mut wr, &data, maxprec);
                assert_eq!(w.bit_len(), wr.bit_len(), "trial {trial} prec {maxprec}");
                assert_eq!(
                    w.finish(),
                    wr.finish(),
                    "trial {trial} prec {maxprec} diverged"
                );
            }
        }
    }

    #[test]
    fn consecutive_blocks_share_stream() {
        let a: [i64; 64] = std::array::from_fn(|i| i as i64 * 3 - 90);
        let b: [i64; 64] = std::array::from_fn(|i| -(i as i64) * 7 + 1);
        let mut w = BitWriter::new();
        encode_block_ints(&mut w, &a, INTPREC);
        encode_block_ints(&mut w, &b, 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(decode_block_ints(&mut r, INTPREC), a);
        let b2 = decode_block_ints(&mut r, 20);
        let tol = 1i64 << (INTPREC - 20 + 1);
        for (x, y) in b.iter().zip(&b2) {
            assert!((x - y).abs() < tol);
        }
    }
}
