//! Summary statistics for fields.

use crate::field::Field3;

/// Basic moments and extrema of a field (computed in `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
}

impl FieldStats {
    /// Computes stats over `field` (single pass, Welford).
    pub fn compute(field: &Field3) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut n = 0u64;
        for &v in field.data() {
            let v = v as f64;
            n += 1;
            let d = v - mean;
            mean += d / n as f64;
            m2 += d * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        if n == 0 {
            return FieldStats {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                variance: 0.0,
            };
        }
        FieldStats {
            min,
            max,
            mean,
            variance: m2 / n as f64,
        }
    }

    /// `max − min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    #[test]
    fn constant_field() {
        let f = Field3::new(Dims3::cube(4), 2.5);
        let s = FieldStats::compute(&f);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn two_valued_field() {
        let mut f = Field3::new(Dims3::new(1, 1, 4), 0.0);
        f.set(0, 0, 2, 4.0);
        f.set(0, 0, 3, 4.0);
        let s = FieldStats::compute(&f);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.variance, 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn empty_field() {
        let f = Field3::zeros(Dims3::new(0, 4, 4));
        let s = FieldStats::compute(&f);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.range(), 0.0);
    }
}
