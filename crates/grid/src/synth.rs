//! Synthetic proxies for the paper's five scientific datasets (Table III).
//!
//! The original evaluation uses Nyx cosmology, WarpX electromagnetics, IAMR
//! Rayleigh–Taylor, Hurricane Isabel and S3D combustion — 1–11 GB production
//! snapshots we cannot ship. Each generator below reproduces the *morphology*
//! that drives the workflow's behaviour (DESIGN.md §2): where value ranges
//! concentrate (ROI selection), how smooth the field is (interpolation
//! accuracy), and where sharp features sit (blocking artifacts, isosurfaces).
//!
//! All generators are deterministic in their seed.

use crate::dims::Dims3;
use crate::field::Field3;
use hqmr_fft::{fft_3d, ifft_3d, Complex, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples one standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gaussian random field with isotropic power spectrum `P(k) ∝ k^spectral_index`
/// (`k` in grid units), normalized to zero mean and unit variance.
///
/// Construction: white noise → FFT → multiply by `√P(k)` → inverse FFT → real
/// part. Requires power-of-two extents.
pub fn gaussian_random_field(dims: Dims3, spectral_index: f64, seed: u64) -> Field3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dims.len();
    let mut data: Vec<Complex> = (0..n)
        .map(|_| Complex::new(normal(&mut rng), 0.0))
        .collect();
    fft_3d(&mut data, dims.nx, dims.ny, dims.nz, Direction::Forward);
    for x in 0..dims.nx {
        // Signed frequency index (wrap to negative half).
        let kx = if x <= dims.nx / 2 {
            x as f64
        } else {
            x as f64 - dims.nx as f64
        };
        for y in 0..dims.ny {
            let ky = if y <= dims.ny / 2 {
                y as f64
            } else {
                y as f64 - dims.ny as f64
            };
            for z in 0..dims.nz {
                let kz = if z <= dims.nz / 2 {
                    z as f64
                } else {
                    z as f64 - dims.nz as f64
                };
                let k2 = kx * kx + ky * ky + kz * kz;
                let i = dims.idx(x, y, z);
                if k2 == 0.0 {
                    data[i] = Complex::ZERO; // remove the mean
                } else {
                    let amp = k2.sqrt().powf(spectral_index / 2.0);
                    data[i] = data[i].scale(amp);
                }
            }
        }
    }
    ifft_3d(&mut data, dims.nx, dims.ny, dims.nz);
    let mut out: Vec<f32> = data.iter().map(|z| z.re as f32).collect();
    // Normalize to zero mean, unit variance.
    let mean = out.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var = out.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    let inv_sd = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in &mut out {
        *v = ((*v as f64 - mean) * inv_sd) as f32;
    }
    Field3::from_vec(dims, out)
}

/// Nyx-like "baryon density": lognormal transform of a red-spectrum GRF.
///
/// The exponential amplifies peaks into halo-like overdensities while most of
/// the volume stays near the mean — exactly the sparse high-range structure
/// the range-threshold ROI selector keys on (Fig. 4). Values are scaled to a
/// mean density of `1e8` (arbitrary units comparable to Nyx's field).
pub fn nyx_like(n: usize, seed: u64) -> Field3 {
    // Steep spectrum: baryon density is pressure-smoothed in Nyx.
    let mut f = gaussian_random_field(Dims3::cube(n), -3.8, seed);
    let bias = 2.0f64; // lognormal bias: higher ⇒ sharper halos
    let mut sum = 0.0f64;
    for v in f.data_mut() {
        let d = (bias * *v as f64).exp();
        *v = d as f32;
        sum += d;
    }
    let scale = 1e8 / (sum / f.len() as f64);
    f.map_inplace(move |v| (v as f64 * scale) as f32);
    f
}

/// WarpX-like `Ez` of a laser-wakefield stage: a Gaussian-envelope laser pulse
/// plus a trailing plasma-wake oscillation, both localized near the beam axis.
///
/// `dims` is typically elongated along `z` (the paper uses `256²×2048`). The
/// signal occupies roughly the axial half of the transverse plane, matching
/// the 50% adaptive-ROI density of Table III.
pub fn warpx_like(dims: Dims3, seed: u64) -> Field3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let e0 = 1.0e9f64; // peak laser field
    let cx = dims.nx as f64 / 2.0;
    let cy = dims.ny as f64 / 2.0;
    let w = dims.nx as f64 / 5.0; // transverse waist
    let z0 = dims.nz as f64 * 0.7; // pulse position
    let sigma_z = dims.nz as f64 / 40.0;
    let k_laser = 2.0 * std::f64::consts::PI / (dims.nz as f64 / 64.0);
    let k_wake = 2.0 * std::f64::consts::PI / (dims.nz as f64 / 10.0);
    let wake_decay = dims.nz as f64 / 2.5;
    let noise_amp = e0 * 2e-4;
    Field3::from_fn(dims, |x, y, z| {
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        let r2 = dx * dx + dy * dy;
        let trans = (-r2 / (w * w)).exp();
        let zf = z as f64;
        // Laser pulse.
        let pulse = e0
            * (-((zf - z0) * (zf - z0)) / (2.0 * sigma_z * sigma_z)).exp()
            * (k_laser * zf).cos();
        // Wake behind the pulse (z < z0), decaying with distance.
        let wake = if zf < z0 {
            0.35 * e0 * (-(z0 - zf) / wake_decay).exp() * (k_wake * (z0 - zf)).sin()
        } else {
            0.0
        };
        let noise = noise_amp * normal(&mut rng);
        ((pulse + wake) * trans + noise) as f32
    })
}

/// Rayleigh–Taylor-like density: heavy fluid over light with a multi-mode
/// perturbed interface and a turbulent mixing layer.
///
/// Reproduces IAMR's RT morphology: most of the domain is near-constant (easy
/// to compress, coarse AMR level) with a thin high-gradient band (fine level).
pub fn rt_like(n: usize, seed: u64) -> Field3 {
    let dims = Dims3::cube(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Multi-mode interface height h(x, y).
    let n_modes = 6;
    let modes: Vec<(f64, f64, f64, f64)> = (0..n_modes)
        .map(|m| {
            let kx = rng.gen_range(1..=4) as f64;
            let ky = rng.gen_range(1..=4) as f64;
            let phase = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
            let amp = n as f64 * 0.035 / (m as f64 + 1.0);
            (kx, ky, phase, amp)
        })
        .collect();
    // Small-scale turbulence inside the mixing layer.
    let turb = gaussian_random_field(dims, -1.8, seed ^ 0x5EED);
    let mid = n as f64 / 2.0;
    let delta = n as f64 * 0.02; // interface thickness
    let tau = 2.0 * std::f64::consts::PI;
    Field3::from_fn(dims, |x, y, z| {
        let mut h = mid;
        for &(kx, ky, phase, amp) in &modes {
            h += amp
                * ((tau * kx * x as f64 / n as f64).cos() * (tau * ky * y as f64 / n as f64).cos()
                    + phase)
                    .sin();
        }
        let s = ((z as f64 - h) / delta).tanh(); // −1 light … +1 heavy
        let base = 2.0 + s; // densities 1..3
                            // Mixing-layer turbulence, windowed to the interface region; clamped
                            // so density stays physical even at GRF tails.
        let window = (-(z as f64 - h).powi(2) / (2.0 * (6.0 * delta).powi(2))).exp();
        (base + 0.25 * window * turb.get(x, y, z) as f64).clamp(0.1, 4.0) as f32
    })
}

/// Hurricane-Isabel-like field (wind-speed magnitude): a vertically tilted
/// vortex with a calm eye, embedded in a quiet background.
///
/// The far field is near zero, reproducing the sparsity the paper credits for
/// the Hurricane dataset's compressibility (§IV-C).
pub fn hurricane_like(dims: Dims3, seed: u64) -> Field3 {
    let mut rng = StdRng::seed_from_u64(seed);
    let vmax = 70.0f64; // m/s
    let r_eye = dims.nx as f64 * 0.06;
    let noise_amp = 1.5;
    // Vortex core drifts with altitude.
    let tilt_x = dims.nx as f64 * 0.1;
    let tilt_y = dims.ny as f64 * 0.05;
    // Rainband mesovortices: weaker satellite circulations whose peaks sit
    // near typical isovalues — the fragile features Fig. 14 watches.
    let n_sat = 5usize;
    let satellites: Vec<(f64, f64, f64, f64)> = (0..n_sat)
        .map(|i| {
            let ang =
                i as f64 / n_sat as f64 * 2.0 * std::f64::consts::PI + rng.gen_range(0.0..0.6);
            let rad = dims.nx as f64 * rng.gen_range(0.28..0.42);
            let amp = vmax * (0.62 + 0.1 * (i as f64 / n_sat as f64));
            (
                dims.nx as f64 * 0.5 + rad * ang.cos(),
                dims.ny as f64 * 0.5 + rad * ang.sin(),
                amp,
                r_eye * rng.gen_range(0.5..0.8),
            )
        })
        .collect();
    Field3::from_fn(dims, |x, y, z| {
        let zf = z as f64 / dims.nz.max(1) as f64;
        let cx = dims.nx as f64 * 0.5 + tilt_x * zf;
        let cy = dims.ny as f64 * 0.5 + tilt_y * (zf * 3.1).sin();
        let dx = x as f64 - cx;
        let dy = y as f64 - cy;
        let r = (dx * dx + dy * dy).sqrt();
        // Rankine-like profile: zero in the eye centre, peak at r_eye, decay.
        let prof = (r / r_eye) * (1.0 - r / r_eye).exp();
        let vertical = (1.0 - 0.6 * zf).max(0.0);
        let mut v = vmax * prof.max(0.0) * vertical;
        for &(sx, sy, amp, sr) in &satellites {
            let d2 = (x as f64 - sx).powi(2) + (y as f64 - sy).powi(2);
            v = v.max(amp * (-d2 / (2.0 * sr * sr)).exp() * vertical);
        }
        // Turbulent gustiness proportional to the local wind: the far field
        // stays exactly quiet (the sparsity §IV-C credits this dataset with).
        (v * (1.0 + noise_amp * normal(&mut rng) / vmax)) as f32
    })
}

/// S3D-like combustion scalar: a wrinkled flame front (`tanh` profile across a
/// GRF-perturbed surface) with embedded hot spots.
pub fn s3d_like(n: usize, seed: u64) -> Field3 {
    let dims = Dims3::cube(n);
    // 2-D GRF for the front wrinkling (nz = 1 keeps the FFT happy).
    let front2d = gaussian_random_field(Dims3::new(n, n, 1), -2.0, seed ^ 0xF00D);
    let hot = gaussian_random_field(dims, -2.2, seed ^ 0xBEEF);
    let mid = n as f64 / 2.0;
    let wrinkle = n as f64 * 0.08;
    let delta = n as f64 * 0.015;
    let t_cold = 300.0f64;
    let t_hot = 1900.0f64;
    Field3::from_fn(dims, |x, y, z| {
        let h = mid + wrinkle * front2d.get(x, y, 0) as f64;
        let c = 0.5 * (1.0 + ((z as f64 - h) / delta).tanh()); // progress variable
                                                               // Hot spots only in burnt gas.
        let spots = 120.0 * c * (hot.get(x, y, z) as f64).max(0.0);
        (t_cold + (t_hot - t_cold) * c + spots) as f32
    })
}

/// Periodic trilinear resample of `field` shifted by `shift` grid cells:
/// `out(x) = field(x − shift)` with all three axes wrapping.
///
/// This is the advection operator of a uniform-velocity flow under periodic
/// boundaries — the cheapest field evolution that keeps frame-to-frame
/// morphology realistic (structures translate and blur slightly rather than
/// being regenerated), which is what temporal prediction feeds on.
pub fn advect_periodic(field: &Field3, shift: [f64; 3]) -> Field3 {
    let d = field.dims();
    let ext = [d.nx, d.ny, d.nz];
    // Wrap a (possibly negative) continuous coordinate into [0, n) and split
    // into base cell + fraction.
    let split = |v: f64, n: usize| -> (usize, usize, f32) {
        let n_f = n as f64;
        let w = v.rem_euclid(n_f);
        let i0 = w.floor() as usize % n;
        ((i0) % n, (i0 + 1) % n, (w - w.floor()) as f32)
    };
    Field3::from_fn(d, |x, y, z| {
        let (x0, x1, fx) = split(x as f64 - shift[0], ext[0]);
        let (y0, y1, fy) = split(y as f64 - shift[1], ext[1]);
        let (z0, z1, fz) = split(z as f64 - shift[2], ext[2]);
        let c000 = field.get(x0, y0, z0);
        let c100 = field.get(x1, y0, z0);
        let c010 = field.get(x0, y1, z0);
        let c110 = field.get(x1, y1, z0);
        let c001 = field.get(x0, y0, z1);
        let c101 = field.get(x1, y0, z1);
        let c011 = field.get(x0, y1, z1);
        let c111 = field.get(x1, y1, z1);
        let c00 = c000 + (c100 - c000) * fx;
        let c10 = c010 + (c110 - c010) * fx;
        let c01 = c001 + (c101 - c001) * fx;
        let c11 = c011 + (c111 - c011) * fx;
        let c0 = c00 + (c10 - c00) * fy;
        let c1 = c01 + (c11 - c01) * fy;
        c0 + (c1 - c0) * fz
    })
}

/// A deterministic time series for temporal-compression experiments: a
/// red-spectrum GRF advected by `t · velocity` cells per frame, with a slow
/// global amplitude modulation so consecutive frames are close but not
/// trivially identical.
///
/// Frame 0 is the unmodified base field; frame `t` is the base advected by
/// the *accumulated* shift (resampling always from the base avoids compound
/// interpolation blur). Requires power-of-two extents (GRF construction).
pub fn advected_sequence(dims: Dims3, steps: usize, velocity: [f64; 3], seed: u64) -> Vec<Field3> {
    let base = gaussian_random_field(dims, -2.5, seed);
    (0..steps)
        .map(|t| {
            let tf = t as f64;
            let shift = [velocity[0] * tf, velocity[1] * tf, velocity[2] * tf];
            let mut f = advect_periodic(&base, shift);
            // Slow drift, small enough that frame-to-frame change stays
            // dominated by the advection term.
            let amp = (1.0 + 0.01 * (0.7 * tf).sin()) as f32;
            if t > 0 {
                f.map_inplace(move |v| v * amp);
            }
            f
        })
        .collect()
}

/// Named dataset configurations mirroring the paper's Table III, at a
/// laptop-scale default size (each scales with `n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Nyx-T1 (in-situ AMR, 2 levels) / T2 / T3 share the generator with
    /// different seeds.
    NyxT1,
    /// Second Nyx timestep (offline AMR).
    NyxT2,
    /// Third Nyx timestep (offline uniform).
    NyxT3,
    /// WarpX `Ez` (in-situ adaptive).
    WarpX,
    /// IAMR Rayleigh–Taylor (offline AMR, 3 levels).
    Rt,
    /// Hurricane Isabel (offline adaptive).
    Hurricane,
    /// S3D combustion (offline uniform).
    S3d,
}

impl Dataset {
    /// Generates the dataset's fine-level uniform field at scale `n`
    /// (`n` = cube side for cubic datasets; elongated datasets derive their
    /// shape from `n`).
    pub fn generate(self, n: usize, seed: u64) -> Field3 {
        match self {
            Dataset::NyxT1 => nyx_like(n, seed),
            Dataset::NyxT2 => nyx_like(n, seed ^ 0x1111),
            Dataset::NyxT3 => nyx_like(n, seed ^ 0x2222),
            // Paper shape 256²×2048 = n²×8n.
            Dataset::WarpX => warpx_like(Dims3::new(n, n, 8 * n), seed),
            Dataset::Rt => rt_like(n, seed),
            // Paper shape 500²×100 ≈ n²×n/4.
            Dataset::Hurricane => hurricane_like(Dims3::new(n, n, (n / 4).max(1)), seed),
            Dataset::S3d => s3d_like(n, seed),
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::NyxT1 => "Nyx-T1",
            Dataset::NyxT2 => "Nyx-T2",
            Dataset::NyxT3 => "Nyx-T3",
            Dataset::WarpX => "WarpX",
            Dataset::Rt => "RT",
            Dataset::Hurricane => "Hurri",
            Dataset::S3d => "S3D",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::FieldStats;

    #[test]
    fn grf_is_normalized() {
        let f = gaussian_random_field(Dims3::cube(32), -2.0, 42);
        let s = FieldStats::compute(&f);
        assert!(s.mean.abs() < 1e-3, "mean = {}", s.mean);
        assert!((s.variance - 1.0).abs() < 1e-2, "var = {}", s.variance);
    }

    #[test]
    fn grf_is_deterministic() {
        let a = gaussian_random_field(Dims3::cube(16), -2.0, 7);
        let b = gaussian_random_field(Dims3::cube(16), -2.0, 7);
        assert_eq!(a, b);
        let c = gaussian_random_field(Dims3::cube(16), -2.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn grf_red_spectrum_is_smoother_than_white() {
        // Red (negative index) fields have smaller neighbour differences than
        // flat-spectrum fields of equal variance.
        let red = gaussian_random_field(Dims3::cube(32), -3.0, 3);
        let white = gaussian_random_field(Dims3::cube(32), 0.0, 3);
        let rough = |f: &Field3| {
            let d = f.dims();
            let mut acc = 0.0f64;
            for x in 0..d.nx - 1 {
                for y in 0..d.ny {
                    for z in 0..d.nz {
                        acc += (f.get(x + 1, y, z) - f.get(x, y, z)).powi(2) as f64;
                    }
                }
            }
            acc
        };
        assert!(
            rough(&red) < rough(&white) * 0.5,
            "red {} white {}",
            rough(&red),
            rough(&white)
        );
    }

    #[test]
    fn nyx_has_sparse_halos() {
        let f = nyx_like(32, 1);
        let s = FieldStats::compute(&f);
        assert!((s.mean - 1e8).abs() / 1e8 < 1e-6);
        // Heavy tail: max far above mean, min well below.
        assert!(s.max > 4.0 * s.mean);
        assert!(s.min < 0.5 * s.mean);
        assert!(s.min > 0.0, "density must stay positive");
        // Sparsity: < 20% of cells exceed 2× the mean.
        let frac_hot = f
            .data()
            .iter()
            .filter(|&&v| v as f64 > 2.0 * s.mean)
            .count() as f64
            / f.len() as f64;
        assert!(frac_hot < 0.2, "hot fraction {frac_hot}");
    }

    #[test]
    fn warpx_signal_is_axial() {
        let f = warpx_like(Dims3::new(32, 32, 128), 2);
        // Peak amplitude near the axis dwarfs the corners.
        let mut axis_max = 0.0f32;
        let mut corner_max = 0.0f32;
        for z in 0..128 {
            axis_max = axis_max.max(f.get(16, 16, z).abs());
            corner_max = corner_max.max(f.get(0, 0, z).abs());
        }
        assert!(axis_max > 100.0 * corner_max.max(1.0));
    }

    #[test]
    fn rt_has_two_phases_and_interface() {
        let f = rt_like(32, 3);
        let s = FieldStats::compute(&f);
        // Bottom is light (≈1), top is heavy (≈3).
        assert!(f.get(16, 16, 1) < 1.6);
        assert!(f.get(16, 16, 30) > 2.4);
        assert!(s.min > 0.0 && s.max <= 4.0);
    }

    #[test]
    fn hurricane_far_field_is_quiet() {
        let f = hurricane_like(Dims3::new(64, 64, 16), 4);
        let eye_wall: f32 = f.get(35, 32, 0);
        let far: f32 = f.get(1, 1, 0);
        assert!(
            eye_wall > 10.0 * far.max(0.5),
            "eye {eye_wall} vs far {far}"
        );
    }

    #[test]
    fn s3d_progress_spans_cold_to_hot() {
        let f = s3d_like(32, 5);
        assert!(f.get(16, 16, 0) < 500.0); // unburnt
        assert!(f.get(16, 16, 31) > 1500.0); // burnt
    }

    #[test]
    fn advect_integer_shift_is_exact_rotation() {
        let f = gaussian_random_field(Dims3::cube(16), -2.0, 11);
        let g = advect_periodic(&f, [3.0, 0.0, 0.0]);
        for x in 0..16 {
            for y in 0..16 {
                for z in 0..16 {
                    assert_eq!(g.get(x, y, z), f.get((x + 16 - 3) % 16, y, z));
                }
            }
        }
        // Full-period shift is the identity.
        let h = advect_periodic(&f, [16.0, 16.0, 16.0]);
        assert_eq!(h, f);
    }

    #[test]
    fn advect_fractional_shift_stays_in_range_and_moves_mass() {
        let f = gaussian_random_field(Dims3::cube(16), -2.5, 12);
        let g = advect_periodic(&f, [0.5, -1.25, 2.75]);
        let (fs, gs) = (FieldStats::compute(&f), FieldStats::compute(&g));
        // Trilinear interpolation cannot create new extrema.
        assert!(gs.max <= fs.max + 1e-6 && gs.min >= fs.min - 1e-6);
        assert_ne!(f, g);
    }

    #[test]
    fn advected_sequence_is_deterministic_and_coherent() {
        let a = advected_sequence(Dims3::cube(16), 4, [1.5, 0.5, 0.0], 9);
        let b = advected_sequence(Dims3::cube(16), 4, [1.5, 0.5, 0.0], 9);
        assert_eq!(a.len(), 4);
        assert_eq!(a, b);
        // Consecutive frames are much closer than distant ones (the property
        // temporal prediction exploits).
        let dist = |p: &Field3, q: &Field3| -> f64 {
            p.data()
                .iter()
                .zip(q.data())
                .map(|(&u, &v)| ((u - v) as f64).powi(2))
                .sum::<f64>()
        };
        assert!(dist(&a[0], &a[1]) < dist(&a[0], &a[3]));
    }

    #[test]
    fn dataset_enum_generates_expected_shapes() {
        assert_eq!(Dataset::WarpX.generate(8, 0).dims(), Dims3::new(8, 8, 64));
        assert_eq!(
            Dataset::Hurricane.generate(16, 0).dims(),
            Dims3::new(16, 16, 4)
        );
        assert_eq!(Dataset::NyxT1.generate(16, 0).dims(), Dims3::cube(16));
        assert_eq!(Dataset::Rt.name(), "RT");
    }
}
