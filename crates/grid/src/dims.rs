//! 3-D extents and index arithmetic.

/// Extents of a 3-D grid. Row-major with `z` fastest:
/// `idx = (x·ny + y)·nz + z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims3 {
    /// Slowest-varying extent.
    pub nx: usize,
    /// Middle extent.
    pub ny: usize,
    /// Fastest-varying extent.
    pub nz: usize,
}

impl Dims3 {
    /// Constructs extents.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Dims3 { nx, ny, nz }
    }

    /// Cubic extents `n³`.
    pub const fn cube(n: usize) -> Self {
        Dims3 {
            nx: n,
            ny: n,
            nz: n,
        }
    }

    /// Total number of cells.
    #[inline]
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True iff any extent is zero.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub const fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Self::idx`].
    #[inline]
    pub const fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let z = idx % self.nz;
        let rest = idx / self.nz;
        (rest / self.ny, rest % self.ny, z)
    }

    /// True when `(x, y, z)` lies inside the grid.
    #[inline]
    pub const fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// Extents as an array `[nx, ny, nz]`.
    #[inline]
    pub const fn as_array(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Component-wise integer division, rounding up.
    #[inline]
    pub const fn div_ceil(&self, d: usize) -> Dims3 {
        Dims3 {
            nx: self.nx.div_ceil(d),
            ny: self.ny.div_ceil(d),
            nz: self.nz.div_ceil(d),
        }
    }

    /// Component-wise scaling.
    #[inline]
    pub const fn scaled(&self, s: usize) -> Dims3 {
        Dims3 {
            nx: self.nx * s,
            ny: self.ny * s,
            nz: self.nz * s,
        }
    }

    /// Largest extent.
    #[inline]
    pub fn max_extent(&self) -> usize {
        self.nx.max(self.ny).max(self.nz)
    }

    /// Smallest extent.
    #[inline]
    pub fn min_extent(&self) -> usize {
        self.nx.min(self.ny).min(self.nz)
    }
}

impl std::fmt::Display for Dims3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let d = Dims3::new(4, 5, 6);
        for x in 0..4 {
            for y in 0..5 {
                for z in 0..6 {
                    let i = d.idx(x, y, z);
                    assert_eq!(d.coords(i), (x, y, z));
                }
            }
        }
        assert_eq!(d.len(), 120);
    }

    #[test]
    fn z_is_fastest() {
        let d = Dims3::new(2, 2, 8);
        assert_eq!(d.idx(0, 0, 1) - d.idx(0, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0) - d.idx(0, 0, 0), 8);
        assert_eq!(d.idx(1, 0, 0) - d.idx(0, 0, 0), 16);
    }

    #[test]
    fn div_ceil_and_scale() {
        let d = Dims3::new(10, 16, 7);
        assert_eq!(d.div_ceil(4), Dims3::new(3, 4, 2));
        assert_eq!(d.div_ceil(4).scaled(4), Dims3::new(12, 16, 8));
    }

    #[test]
    fn contains_bounds() {
        let d = Dims3::cube(3);
        assert!(d.contains(2, 2, 2));
        assert!(!d.contains(3, 0, 0));
        assert!(!d.contains(0, 3, 0));
        assert!(!d.contains(0, 0, 3));
    }

    #[test]
    fn display() {
        assert_eq!(Dims3::new(512, 512, 512).to_string(), "512x512x512");
    }
}
