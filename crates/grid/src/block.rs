//! Regular block partition of a field.
//!
//! The ROI pipeline partitions the domain into `b³` blocks (`b = 2ⁿ, n > 2`,
//! §III of the paper) and ranks them by value range. `BlockGrid` owns that
//! partition logic; it is also reused by SZ2/ZFP for their compression blocks.

use crate::dims::Dims3;
use crate::field::Field3;
use rayon::prelude::*;

/// A regular partition of `domain` into cubes of side `b` (edge blocks may be
/// smaller).
#[derive(Debug, Clone, Copy)]
pub struct BlockGrid {
    domain: Dims3,
    b: usize,
    counts: Dims3,
}

/// One block of a [`BlockGrid`]: its grid index, cell origin, and actual size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRef {
    /// Block coordinates within the block grid.
    pub index: [usize; 3],
    /// Cell coordinates of the block's low corner.
    pub origin: [usize; 3],
    /// Actual extent (clipped at the domain edge).
    pub size: Dims3,
}

impl BlockGrid {
    /// Creates a partition of `domain` into `b³` blocks.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    pub fn new(domain: Dims3, b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        BlockGrid {
            domain,
            b,
            counts: domain.div_ceil(b),
        }
    }

    /// Block side length.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.b
    }

    /// Number of blocks along each axis.
    #[inline]
    pub fn counts(&self) -> Dims3 {
        self.counts
    }

    /// Total number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.counts.len()
    }

    /// The domain being partitioned.
    #[inline]
    pub fn domain(&self) -> Dims3 {
        self.domain
    }

    /// The block at block-grid coordinates `(bx, by, bz)`.
    pub fn block(&self, bx: usize, by: usize, bz: usize) -> BlockRef {
        let origin = [bx * self.b, by * self.b, bz * self.b];
        let size = Dims3::new(
            self.b.min(self.domain.nx - origin[0]),
            self.b.min(self.domain.ny - origin[1]),
            self.b.min(self.domain.nz - origin[2]),
        );
        BlockRef {
            index: [bx, by, bz],
            origin,
            size,
        }
    }

    /// Iterates all blocks in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = BlockRef> + '_ {
        let c = self.counts;
        (0..c.nx).flat_map(move |bx| {
            (0..c.ny).flat_map(move |by| (0..c.nz).map(move |bz| self.block(bx, by, bz)))
        })
    }

    /// Per-block value range (`max − min`), computed in parallel. Index order
    /// matches [`Self::iter`].
    pub fn block_ranges(&self, field: &Field3) -> Vec<f32> {
        assert_eq!(
            field.dims(),
            self.domain,
            "field does not match partition domain"
        );
        let blocks: Vec<BlockRef> = self.iter().collect();
        blocks
            .par_iter()
            .map(|blk| {
                let mut mn = f32::INFINITY;
                let mut mx = f32::NEG_INFINITY;
                for x in blk.origin[0]..blk.origin[0] + blk.size.nx {
                    for y in blk.origin[1]..blk.origin[1] + blk.size.ny {
                        for z in blk.origin[2]..blk.origin[2] + blk.size.nz {
                            let v = field.get(x, y, z);
                            mn = mn.min(v);
                            mx = mx.max(v);
                        }
                    }
                }
                mx - mn
            })
            .collect()
    }

    /// Indices (into [`Self::iter`] order) of the top `frac` fraction of blocks
    /// by value range — the paper's range-thresholding ROI selector. Ties are
    /// broken deterministically by block index. `frac` is clamped to `[0, 1]`.
    pub fn top_range_blocks(&self, field: &Field3, frac: f64) -> Vec<usize> {
        let ranges = self.block_ranges(field);
        let k = ((ranges.len() as f64) * frac.clamp(0.0, 1.0)).round() as usize;
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by(|&a, &b| {
            ranges[b]
                .partial_cmp(&ranges[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut top: Vec<usize> = order.into_iter().take(k).collect();
        top.sort_unstable();
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_edges() {
        let g = BlockGrid::new(Dims3::new(10, 8, 8), 4);
        assert_eq!(g.counts(), Dims3::new(3, 2, 2));
        assert_eq!(g.num_blocks(), 12);
        let edge = g.block(2, 0, 0);
        assert_eq!(edge.origin, [8, 0, 0]);
        assert_eq!(edge.size, Dims3::new(2, 4, 4));
    }

    #[test]
    fn iter_covers_domain_exactly_once() {
        let g = BlockGrid::new(Dims3::new(6, 5, 7), 3);
        let mut seen = vec![0u8; 6 * 5 * 7];
        let d = g.domain();
        for blk in g.iter() {
            for x in blk.origin[0]..blk.origin[0] + blk.size.nx {
                for y in blk.origin[1]..blk.origin[1] + blk.size.ny {
                    for z in blk.origin[2]..blk.origin[2] + blk.size.nz {
                        seen[d.idx(x, y, z)] += 1;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn ranges_detect_variation() {
        let mut f = Field3::zeros(Dims3::cube(8));
        f.set(5, 5, 5, 10.0); // block (1,1,1) for b=4
        let g = BlockGrid::new(f.dims(), 4);
        let ranges = g.block_ranges(&f);
        let idx_of = |bx: usize, by: usize, bz: usize| (bx * 2 + by) * 2 + bz;
        assert_eq!(ranges[idx_of(1, 1, 1)], 10.0);
        assert_eq!(ranges[idx_of(0, 0, 0)], 0.0);
    }

    #[test]
    fn top_range_selects_hot_blocks() {
        let mut f = Field3::zeros(Dims3::cube(16));
        f.set(1, 1, 1, 5.0);
        f.set(9, 9, 9, 50.0);
        let g = BlockGrid::new(f.dims(), 8);
        let top = g.top_range_blocks(&f, 0.25); // 2 of 8 blocks
        assert_eq!(top.len(), 2);
        // Both hot blocks selected; indices are sorted.
        let idx_of = |bx: usize, by: usize, bz: usize| (bx * 2 + by) * 2 + bz;
        assert!(top.contains(&idx_of(0, 0, 0)));
        assert!(top.contains(&idx_of(1, 1, 1)));
    }

    #[test]
    fn top_range_frac_extremes() {
        let f = Field3::zeros(Dims3::cube(8));
        let g = BlockGrid::new(f.dims(), 4);
        assert!(g.top_range_blocks(&f, 0.0).is_empty());
        assert_eq!(g.top_range_blocks(&f, 1.0).len(), 8);
        assert_eq!(g.top_range_blocks(&f, 5.0).len(), 8); // clamped
    }
}
