//! Dense row-major `f32` scalar field.

use crate::dims::Dims3;

/// A dense 3-D scalar field (`f32`, row-major, `z` fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    dims: Dims3,
    data: Vec<f32>,
}

impl Field3 {
    /// Constant-filled field.
    pub fn new(dims: Dims3, fill: f32) -> Self {
        Field3 {
            dims,
            data: vec![fill; dims.len()],
        }
    }

    /// Zero-filled field.
    pub fn zeros(dims: Dims3) -> Self {
        Self::new(dims, 0.0)
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != dims.len()`.
    pub fn from_vec(dims: Dims3, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), dims.len(), "buffer does not match {dims}");
        Field3 { dims, data }
    }

    /// Builds a field by evaluating `f(x, y, z)`.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for x in 0..dims.nx {
            for y in 0..dims.ny {
                for z in 0..dims.nz {
                    data.push(f(x, y, z));
                }
            }
        }
        Field3 { dims, data }
    }

    /// Grid extents.
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-size fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Re-dimensions the field in place to `dims`, filled with `fill`,
    /// reusing the existing allocation. The scratch-buffer primitive behind
    /// the codecs' `decompress_into`: a reader decoding many chunks pays for
    /// one buffer, not one per chunk.
    pub fn reshape(&mut self, dims: Dims3, fill: f32) {
        self.dims = dims;
        self.data.clear();
        self.data.resize(dims.len(), fill);
    }

    /// Value at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.dims.idx(x, y, z)]
    }

    /// Sets the value at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let i = self.dims.idx(x, y, z);
        self.data[i] = v;
    }

    /// Value with edge-clamped coordinates (for stencils near boundaries).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize, z: isize) -> f32 {
        let cx = x.clamp(0, self.dims.nx as isize - 1) as usize;
        let cy = y.clamp(0, self.dims.ny as isize - 1) as usize;
        let cz = z.clamp(0, self.dims.nz as isize - 1) as usize;
        self.get(cx, cy, cz)
    }

    /// Minimum and maximum value (`(0, 0)` for empty fields). NaNs are ignored.
    pub fn min_max(&self) -> (f32, f32) {
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for &v in &self.data {
            if v < mn {
                mn = v;
            }
            if v > mx {
                mx = v;
            }
        }
        if mn > mx {
            (0.0, 0.0)
        } else {
            (mn, mx)
        }
    }

    /// `max − min`.
    pub fn range(&self) -> f32 {
        let (mn, mx) = self.min_max();
        mx - mn
    }

    /// Applies `f` to every value in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Copies the axis-aligned box `[origin, origin+size)` into a new field.
    /// Out-of-range cells are edge-clamped (used when blocks overhang the
    /// domain edge).
    pub fn extract_box(&self, origin: [usize; 3], size: Dims3) -> Field3 {
        let mut data = vec![0f32; size.len()];
        self.extract_box_into(origin, size, &mut data);
        Field3 { dims: size, data }
    }

    /// [`Self::extract_box`] into a caller-owned buffer of exactly
    /// `size.len()` cells — the allocation-free variant block-loop hot paths
    /// (e.g. ZFP's 4³ gather) run on.
    ///
    /// # Panics
    /// Panics if `out.len() != size.len()`.
    pub fn extract_box_into(&self, origin: [usize; 3], size: Dims3, out: &mut [f32]) {
        assert_eq!(out.len(), size.len(), "output buffer does not match {size}");
        let interior = origin[0] + size.nx <= self.dims.nx
            && origin[1] + size.ny <= self.dims.ny
            && origin[2] + size.nz <= self.dims.nz;
        if interior {
            // Fully inside: straight row copies, no clamping arithmetic.
            for x in 0..size.nx {
                for y in 0..size.ny {
                    let src = self.dims.idx(origin[0] + x, origin[1] + y, origin[2]);
                    let dst = size.idx(x, y, 0);
                    out[dst..dst + size.nz].copy_from_slice(&self.data[src..src + size.nz]);
                }
            }
            return;
        }
        let mut i = 0usize;
        for x in 0..size.nx {
            for y in 0..size.ny {
                for z in 0..size.nz {
                    out[i] = self.get_clamped(
                        (origin[0] + x) as isize,
                        (origin[1] + y) as isize,
                        (origin[2] + z) as isize,
                    );
                    i += 1;
                }
            }
        }
    }

    /// Writes `block` into this field at `origin`; cells falling outside the
    /// domain are dropped.
    pub fn insert_box(&mut self, origin: [usize; 3], block: &Field3) {
        self.insert_box_from(origin, block.dims(), &block.data);
    }

    /// [`Self::insert_box`] from a raw row-major buffer of dims `bd` — lets
    /// unit-block data (`Vec<f32>`) land without being wrapped in a temporary
    /// `Field3` first.
    ///
    /// # Panics
    /// Panics if `data.len() != bd.len()`.
    pub fn insert_box_from(&mut self, origin: [usize; 3], bd: Dims3, data: &[f32]) {
        assert_eq!(data.len(), bd.len(), "source buffer does not match {bd}");
        for x in 0..bd.nx {
            let gx = origin[0] + x;
            if gx >= self.dims.nx {
                break;
            }
            for y in 0..bd.ny {
                let gy = origin[1] + y;
                if gy >= self.dims.ny {
                    break;
                }
                let zn = bd.nz.min(self.dims.nz.saturating_sub(origin[2]));
                let src = bd.idx(x, y, 0);
                let dst = self.dims.idx(gx, gy, origin[2]);
                self.data[dst..dst + zn].copy_from_slice(&data[src..src + zn]);
            }
        }
    }

    /// 2× average downsampling (each coarse cell is the mean of its ≤8 fine
    /// children; odd extents round up and edge cells average fewer children).
    pub fn downsample2(&self) -> Field3 {
        let cd = self.dims.div_ceil(2);
        Field3::from_fn(cd, |cx, cy, cz| {
            let mut sum = 0.0f64;
            let mut n = 0u32;
            for dx in 0..2 {
                let x = cx * 2 + dx;
                if x >= self.dims.nx {
                    continue;
                }
                for dy in 0..2 {
                    let y = cy * 2 + dy;
                    if y >= self.dims.ny {
                        continue;
                    }
                    for dz in 0..2 {
                        let z = cz * 2 + dz;
                        if z >= self.dims.nz {
                            continue;
                        }
                        sum += self.get(x, y, z) as f64;
                        n += 1;
                    }
                }
            }
            (sum / n as f64) as f32
        })
    }

    /// 2× nearest-neighbour upsampling to exactly `target` extents
    /// (`target ≤ dims·2` component-wise).
    pub fn upsample2_nearest(&self, target: Dims3) -> Field3 {
        Field3::from_fn(target, |x, y, z| {
            self.get(
                (x / 2).min(self.dims.nx - 1),
                (y / 2).min(self.dims.ny - 1),
                (z / 2).min(self.dims.nz - 1),
            )
        })
    }

    /// 2× trilinear upsampling to `target` extents. Fine cell centres are
    /// placed between coarse samples (cell-centred convention).
    pub fn upsample2_trilinear(&self, target: Dims3) -> Field3 {
        let lerp_axis = |t: usize, n: usize| -> (usize, usize, f32) {
            // Fine cell centre in coarse coordinates (cell-centred): (t+0.5)/2 - 0.5.
            let c = (t as f32 + 0.5) / 2.0 - 0.5;
            let c0 = c.floor().clamp(0.0, (n - 1) as f32);
            let i0 = c0 as usize;
            let i1 = (i0 + 1).min(n - 1);
            (i0, i1, (c - c0).clamp(0.0, 1.0))
        };
        Field3::from_fn(target, |x, y, z| {
            let (x0, x1, fx) = lerp_axis(x, self.dims.nx);
            let (y0, y1, fy) = lerp_axis(y, self.dims.ny);
            let (z0, z1, fz) = lerp_axis(z, self.dims.nz);
            let c000 = self.get(x0, y0, z0);
            let c001 = self.get(x0, y0, z1);
            let c010 = self.get(x0, y1, z0);
            let c011 = self.get(x0, y1, z1);
            let c100 = self.get(x1, y0, z0);
            let c101 = self.get(x1, y0, z1);
            let c110 = self.get(x1, y1, z0);
            let c111 = self.get(x1, y1, z1);
            let c00 = c000 + (c001 - c000) * fz;
            let c01 = c010 + (c011 - c010) * fz;
            let c10 = c100 + (c101 - c100) * fz;
            let c11 = c110 + (c111 - c110) * fz;
            let c0 = c00 + (c01 - c00) * fy;
            let c1 = c10 + (c11 - c10) * fy;
            c0 + (c1 - c0) * fx
        })
    }

    /// Extracts the 2-D slice `z = k` as a row-major `(nx, ny)` buffer.
    pub fn slice_z(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nz);
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.ny);
        for x in 0..self.dims.nx {
            for y in 0..self.dims.ny {
                out.push(self.get(x, y, k));
            }
        }
        (self.dims.nx, self.dims.ny, out)
    }

    /// Extracts the 2-D slice `x = k` as a row-major `(ny, nz)` buffer.
    pub fn slice_x(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nx);
        let mut out = Vec::with_capacity(self.dims.ny * self.dims.nz);
        for y in 0..self.dims.ny {
            let base = self.dims.idx(k, y, 0);
            out.extend_from_slice(&self.data[base..base + self.dims.nz]);
        }
        (self.dims.ny, self.dims.nz, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let f = Field3::from_fn(Dims3::new(2, 3, 4), |x, y, z| (x * 100 + y * 10 + z) as f32);
        assert_eq!(f.get(1, 2, 3), 123.0);
        assert_eq!(f.data()[f.dims().idx(1, 0, 2)], 102.0);
    }

    #[test]
    fn min_max_range() {
        let mut f = Field3::zeros(Dims3::cube(3));
        f.set(1, 1, 1, -4.0);
        f.set(2, 2, 2, 6.0);
        assert_eq!(f.min_max(), (-4.0, 6.0));
        assert_eq!(f.range(), 10.0);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let f = Field3::from_fn(Dims3::cube(8), |x, y, z| (x + y + z) as f32);
        let b = f.extract_box([2, 3, 4], Dims3::cube(3));
        assert_eq!(b.get(0, 0, 0), 9.0);
        let mut g = Field3::zeros(Dims3::cube(8));
        g.insert_box([2, 3, 4], &b);
        assert_eq!(g.get(3, 4, 5), f.get(3, 4, 5));
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn extract_clamps_at_edge() {
        let f = Field3::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let b = f.extract_box([3, 0, 0], Dims3::cube(2));
        // x=4 is clamped back to x=3.
        assert_eq!(b.get(1, 0, 0), 3.0);
    }

    #[test]
    fn insert_drops_out_of_domain() {
        let mut f = Field3::zeros(Dims3::cube(4));
        let b = Field3::new(Dims3::cube(3), 5.0);
        f.insert_box([3, 3, 3], &b);
        assert_eq!(f.get(3, 3, 3), 5.0);
        // No panic, nothing else written.
        assert_eq!(f.data().iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn downsample_averages() {
        let f = Field3::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let c = f.downsample2();
        assert_eq!(c.dims(), Dims3::cube(2));
        assert_eq!(c.get(0, 0, 0), 0.5); // mean of x=0,1
        assert_eq!(c.get(1, 0, 0), 2.5); // mean of x=2,3
    }

    #[test]
    fn downsample_odd_dims() {
        let f = Field3::new(Dims3::new(3, 3, 3), 2.0);
        let c = f.downsample2();
        assert_eq!(c.dims(), Dims3::cube(2));
        for &v in c.data() {
            assert_eq!(v, 2.0);
        }
    }

    #[test]
    fn upsample_nearest_blocks() {
        let c = Field3::from_fn(Dims3::cube(2), |x, y, z| (x * 4 + y * 2 + z) as f32);
        let f = c.upsample2_nearest(Dims3::cube(4));
        assert_eq!(f.get(0, 0, 0), 0.0);
        assert_eq!(f.get(1, 1, 1), 0.0);
        assert_eq!(f.get(2, 2, 2), 7.0);
        assert_eq!(f.get(3, 3, 3), 7.0);
    }

    #[test]
    fn upsample_trilinear_preserves_linear_ramp_interior() {
        let c = Field3::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let f = c.upsample2_trilinear(Dims3::cube(8));
        // Interior fine samples of a linear ramp must stay linear: fine x maps
        // to coarse coordinate (x+0.5)/2-0.5.
        for x in 1..7 {
            let expect = ((x as f32 + 0.5) / 2.0 - 0.5).clamp(0.0, 3.0);
            assert!((f.get(x, 4, 4) - expect).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn downsample_then_upsample_constant_is_identity() {
        let f = Field3::new(Dims3::cube(8), 3.25);
        let r = f.downsample2().upsample2_trilinear(Dims3::cube(8));
        for &v in r.data() {
            assert!((v - 3.25).abs() < 1e-6);
        }
    }

    #[test]
    #[allow(clippy::identity_op)] // spelled-out row*width+col indices
    fn slices() {
        let f = Field3::from_fn(Dims3::new(2, 3, 4), |x, y, z| (x * 100 + y * 10 + z) as f32);
        let (w, h, s) = f.slice_z(2);
        assert_eq!((w, h), (2, 3));
        assert_eq!(s[1 * 3 + 2], 122.0);
        let (w, h, s) = f.slice_x(1);
        assert_eq!((w, h), (3, 4));
        assert_eq!(s[2 * 4 + 3], 123.0);
    }
}
