//! Dense 3-D scalar fields and the synthetic dataset proxies.
//!
//! Everything downstream (compressors, the multi-resolution model, metrics,
//! visualization) operates on [`Field3`], a row-major `f32` volume. The
//! [`synth`] module generates stand-ins for the paper's five applications
//! (Nyx, WarpX, IAMR Rayleigh–Taylor, Hurricane Isabel, S3D) — see DESIGN.md
//! §2 for the substitution argument.

pub mod block;
pub mod dims;
pub mod field;
pub mod io;
pub mod stats;
pub mod synth;

pub use block::{BlockGrid, BlockRef};
pub use dims::Dims3;
pub use field::Field3;
pub use stats::FieldStats;
