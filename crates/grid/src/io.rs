//! Raw binary field I/O.
//!
//! Little-endian `f32` with a 28-byte header (magic, dims). This is the
//! "write the decompressed file" step of the paper's offline workflow
//! (Table IX column 1) and is also used by the examples to exchange fields.

use crate::dims::Dims3;
use crate::field::Field3;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"HQF3";

/// Writes `field` to `w` (header + raw little-endian f32).
pub fn write_field(mut w: impl Write, field: &Field3) -> io::Result<()> {
    let d = field.dims();
    w.write_all(MAGIC)?;
    w.write_all(&(d.nx as u64).to_le_bytes())?;
    w.write_all(&(d.ny as u64).to_le_bytes())?;
    w.write_all(&(d.nz as u64).to_le_bytes())?;
    // Write in slabs to avoid a full-size staging copy.
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in field.data().chunks(16 * 1024) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a field written by [`write_field`].
pub fn read_field(mut r: impl Read) -> io::Result<Field3> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad field magic",
        ));
    }
    let mut u = [0u8; 8];
    let mut rd = |r: &mut dyn Read| -> io::Result<usize> {
        r.read_exact(&mut u)?;
        Ok(u64::from_le_bytes(u) as usize)
    };
    let nx = rd(&mut r)?;
    let ny = rd(&mut r)?;
    let nz = rd(&mut r)?;
    let dims = Dims3::new(nx, ny, nz);
    let mut bytes = vec![0u8; dims.len() * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Field3::from_vec(dims, data))
}

/// Writes a field to a file path.
pub fn save_field(path: impl AsRef<Path>, field: &Field3) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_field(io::BufWriter::new(f), field)
}

/// Reads a field from a file path.
pub fn load_field(path: impl AsRef<Path>) -> io::Result<Field3> {
    let f = std::fs::File::open(path)?;
    read_field(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let f = Field3::from_fn(Dims3::new(3, 4, 5), |x, y, z| (x + 10 * y + 100 * z) as f32);
        let mut buf = Vec::new();
        write_field(&mut buf, &f).unwrap();
        let g = read_field(buf.as_slice()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE____________________".to_vec();
        assert!(read_field(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let f = Field3::new(Dims3::cube(4), 1.0);
        let mut buf = Vec::new();
        write_field(&mut buf, &f).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_field(buf.as_slice()).is_err());
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let f = Field3::from_fn(Dims3::cube(8), |x, y, z| (x * y * z) as f32 * 0.5);
        let path = std::env::temp_dir().join("hqmr_io_test.hqf3");
        save_field(&path, &f).unwrap();
        let g = load_field(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(f, g);
    }
}
