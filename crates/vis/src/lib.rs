//! Visualization for the workflow's quality and uncertainty analysis.
//!
//! * [`iso`] — isosurface machinery: per-cell crossing tests, connected
//!   surface features (the cyan/green boxes of Fig. 14 are quantified as
//!   features present/missing/recovered), and mesh extraction. Meshes are
//!   extracted by marching *tetrahedra* — a table-free, watertight equivalent
//!   of marching cubes (DESIGN.md §2 records the substitution; all Fig. 14
//!   statistics depend only on cell crossings, which are identical).
//! * [`pmc`] — probabilistic marching cubes (Pöthkow et al., the paper's
//!   §III-C): per-voxel Gaussian uncertainty → per-cell level-crossing
//!   probability, closed form under independence plus a Monte-Carlo variant
//!   with spatial correlation.
//! * [`render`] — 2-D slice rendering with colormaps and PPM output for the
//!   visual-comparison figures.

pub mod iso;
pub mod pmc;
pub mod render;

pub use iso::{
    cell_crossings, components_of, extract_isosurface, features_bbox, surface_features, IsoMesh,
    SurfaceFeature,
};
pub use pmc::{crossing_probability_field, gaussian_cdf, PmcConfig};
pub use render::{render_slice, save_ppm, Colormap, Image};
