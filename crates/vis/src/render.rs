//! 2-D slice rendering with colormaps and PPM output.
//!
//! Enough rendering to regenerate the paper's visual-comparison figures
//! (Fig. 4/5/9/14/16): scalar slices through a volume mapped to RGB with a
//! warm-cool or viridis-like colormap, optional red uncertainty overlay, and
//! binary PPM files any image viewer opens.

use hqmr_grid::Field3;
use std::io::Write;
use std::path::Path;

/// An 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB bytes (`3·width·height`).
    pub rgb: Vec<u8>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            rgb: vec![0; 3 * width * height],
        }
    }

    /// Sets one pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = 3 * (y * self.width + x);
        self.rgb[i..i + 3].copy_from_slice(&rgb);
    }

    /// Gets one pixel.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = 3 * (y * self.width + x);
        [self.rgb[i], self.rgb[i + 1], self.rgb[i + 2]]
    }

    /// Blends `color` over the pixel with opacity `alpha` (0..1).
    pub fn blend(&mut self, x: usize, y: usize, color: [u8; 3], alpha: f32) {
        let a = alpha.clamp(0.0, 1.0);
        let cur = self.get(x, y);
        let mix: [u8; 3] = std::array::from_fn(|k| {
            (cur[k] as f32 * (1.0 - a) + color[k] as f32 * a).round() as u8
        });
        self.set(x, y, mix);
    }
}

/// Colormap choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Colormap {
    /// Blue → white → red ("warmer colors indicate higher values", Fig. 5).
    CoolWarm,
    /// Dark-blue → green → yellow (viridis-like polynomial fit).
    Viridis,
    /// Plain grayscale.
    Gray,
}

impl Colormap {
    /// Maps `t ∈ [0, 1]` to RGB.
    pub fn map(self, t: f32) -> [u8; 3] {
        let t = t.clamp(0.0, 1.0);
        match self {
            Colormap::Gray => {
                let g = (t * 255.0) as u8;
                [g, g, g]
            }
            Colormap::CoolWarm => {
                // Piecewise blue(0,0,255) → white(255,255,255) → red(255,0,0).
                if t < 0.5 {
                    let s = t * 2.0;
                    [(255.0 * s) as u8, (255.0 * s) as u8, 255]
                } else {
                    let s = (t - 0.5) * 2.0;
                    [255, (255.0 * (1.0 - s)) as u8, (255.0 * (1.0 - s)) as u8]
                }
            }
            Colormap::Viridis => {
                // Coarse 5-point linear fit of viridis.
                const STOPS: [(f32, [f32; 3]); 5] = [
                    (0.0, [68.0, 1.0, 84.0]),
                    (0.25, [59.0, 82.0, 139.0]),
                    (0.5, [33.0, 145.0, 140.0]),
                    (0.75, [94.0, 201.0, 98.0]),
                    (1.0, [253.0, 231.0, 37.0]),
                ];
                let mut lo = STOPS[0];
                let mut hi = STOPS[4];
                for w in STOPS.windows(2) {
                    if t >= w[0].0 && t <= w[1].0 {
                        lo = w[0];
                        hi = w[1];
                        break;
                    }
                }
                let s = if hi.0 > lo.0 {
                    (t - lo.0) / (hi.0 - lo.0)
                } else {
                    0.0
                };
                std::array::from_fn(|k| (lo.1[k] + s * (hi.1[k] - lo.1[k])) as u8)
            }
        }
    }
}

/// Renders the `z = k` slice of `field` with values normalized to
/// `[lo, hi]` (pass the original data's range to make images comparable
/// across compressors, as the paper's side-by-side figures require).
pub fn render_slice(field: &Field3, k: usize, lo: f32, hi: f32, cmap: Colormap) -> Image {
    let (w, h, data) = field.slice_z(k);
    let span = (hi - lo).max(f32::EPSILON);
    let mut img = Image::new(w, h);
    for x in 0..w {
        for y in 0..h {
            let t = (data[x * h + y] - lo) / span;
            img.set(x, y, cmap.map(t));
        }
    }
    img
}

/// Overlays a cell-probability field (e.g. PMC output, same slice index) in
/// red with opacity proportional to probability — the Fig. 14c visualization.
pub fn overlay_probability(img: &mut Image, prob_slice: &[f32], w: usize, h: usize) {
    assert_eq!(prob_slice.len(), w * h, "probability slice shape mismatch");
    for x in 0..w.min(img.width) {
        for y in 0..h.min(img.height) {
            let p = prob_slice[x * h + y];
            if p > 0.01 {
                img.blend(x, y, [255, 0, 0], p);
            }
        }
    }
}

/// Writes a binary PPM (P6).
pub fn save_ppm(path: impl AsRef<Path>, img: &Image) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(f);
    write!(w, "P6\n{} {}\n255\n", img.width, img.height)?;
    w.write_all(&img.rgb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqmr_grid::Dims3;

    #[test]
    fn colormap_endpoints() {
        assert_eq!(Colormap::Gray.map(0.0), [0, 0, 0]);
        assert_eq!(Colormap::Gray.map(1.0), [255, 255, 255]);
        assert_eq!(Colormap::CoolWarm.map(0.0), [0, 0, 255]);
        assert_eq!(Colormap::CoolWarm.map(1.0), [255, 0, 0]);
        let v0 = Colormap::Viridis.map(0.0);
        let v1 = Colormap::Viridis.map(1.0);
        assert_eq!(v0, [68, 1, 84]);
        assert_eq!(v1, [253, 231, 37]);
        // Out-of-range inputs clamp.
        assert_eq!(Colormap::Gray.map(-3.0), [0, 0, 0]);
        assert_eq!(Colormap::Gray.map(7.0), [255, 255, 255]);
    }

    #[test]
    fn render_maps_range() {
        let f = Field3::from_fn(Dims3::new(4, 4, 2), |x, _, _| x as f32);
        let img = render_slice(&f, 0, 0.0, 3.0, Colormap::Gray);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        assert_eq!(img.get(3, 0), [255, 255, 255]);
    }

    #[test]
    fn blend_mixes_colors() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, [100, 100, 100]);
        img.blend(0, 0, [255, 0, 0], 0.5);
        let p = img.get(0, 0);
        assert_eq!(p, [178, 50, 50]);
    }

    #[test]
    fn overlay_only_touches_probable_cells() {
        let f = Field3::new(Dims3::new(3, 3, 1), 0.5);
        let mut img = render_slice(&f, 0, 0.0, 1.0, Colormap::Gray);
        let before = img.get(0, 0);
        let mut prob = vec![0.0f32; 9];
        prob[3 + 1] = 1.0; // cell (1,1) certain
        overlay_probability(&mut img, &prob, 3, 3);
        assert_eq!(img.get(0, 0), before);
        assert_eq!(img.get(1, 1), [255, 0, 0]);
    }

    #[test]
    fn ppm_roundtrip_header() {
        let img = Image::new(5, 3);
        let path = std::env::temp_dir().join("hqmr_test.ppm");
        save_ppm(&path, &img).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(bytes.starts_with(b"P6\n5 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 45);
    }
}
