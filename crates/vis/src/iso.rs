//! Isosurface extraction and surface-feature analysis.

use hqmr_grid::{Dims3, Field3};

/// A triangle mesh: flat vertex positions and triangle index triples.
#[derive(Debug, Clone, Default)]
pub struct IsoMesh {
    /// Vertex positions `(x, y, z)` in cell coordinates.
    pub vertices: Vec<[f32; 3]>,
    /// Counter-clockwise triangle indices.
    pub triangles: Vec<[u32; 3]>,
}

impl IsoMesh {
    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }
}

/// Returns, for every cell `(nx−1)·(ny−1)·(nz−1)`, whether the isosurface
/// crosses it (i.e. its 8 corners straddle `iso`). Cell index layout follows
/// `Dims3::idx` over the cell grid.
pub fn cell_crossings(field: &Field3, iso: f32) -> (Dims3, Vec<bool>) {
    let d = field.dims();
    let cd = Dims3::new(
        d.nx.saturating_sub(1),
        d.ny.saturating_sub(1),
        d.nz.saturating_sub(1),
    );
    let mut out = vec![false; cd.len()];
    for x in 0..cd.nx {
        for y in 0..cd.ny {
            for z in 0..cd.nz {
                let mut above = false;
                let mut below = false;
                for (dx, dy, dz) in CORNERS {
                    let v = field.get(x + dx, y + dy, z + dz);
                    if v >= iso {
                        above = true;
                    } else {
                        below = true;
                    }
                }
                out[cd.idx(x, y, z)] = above && below;
            }
        }
    }
    (cd, out)
}

const CORNERS: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (1, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// One connected component of surface-crossing cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceFeature {
    /// Number of crossing cells in the component.
    pub cells: usize,
    /// Axis-aligned bounding box `(lo, hi)` in cell coordinates (inclusive).
    pub bbox: ([usize; 3], [usize; 3]),
}

impl SurfaceFeature {
    /// Bounding-box centre.
    pub fn center(&self) -> [f64; 3] {
        [
            (self.bbox.0[0] + self.bbox.1[0]) as f64 / 2.0,
            (self.bbox.0[1] + self.bbox.1[1]) as f64 / 2.0,
            (self.bbox.0[2] + self.bbox.1[2]) as f64 / 2.0,
        ]
    }
}

/// Connected components (6-connectivity) of surface-crossing cells with at
/// least `min_cells` members, sorted by descending size. The unit of
/// comparison for "features missing after compression / recovered by
/// uncertainty visualization" (Fig. 14).
pub fn surface_features(field: &Field3, iso: f32, min_cells: usize) -> Vec<SurfaceFeature> {
    let (cd, crossing) = cell_crossings(field, iso);
    components_of(cd, &crossing, min_cells)
}

/// Union bounding box of a set of features as a half-open `[lo, hi)` cell
/// range — the box a region-of-interest read should fetch to cover them
/// (e.g. features found on a coarse store level, scaled up and re-read at
/// fine resolution through `read_roi`). `None` when `features` is empty.
pub fn features_bbox(features: &[SurfaceFeature]) -> Option<([usize; 3], [usize; 3])> {
    let mut lo = [usize::MAX; 3];
    let mut hi = [0usize; 3];
    for f in features {
        for a in 0..3 {
            lo[a] = lo[a].min(f.bbox.0[a]);
            // Feature bboxes are inclusive cell coords; +1 makes `hi` the
            // half-open upper corner (crossing cells span 2 grid points, so
            // +2 would cover the far corner point — callers reading *cells*
            // want +1, and clamp to level dims either way).
            hi[a] = hi[a].max(f.bbox.1[a] + 1);
        }
    }
    (lo[0] < hi[0]).then_some((lo, hi))
}

/// Connected components of an arbitrary boolean cell mask (shared by
/// [`surface_features`] and the PMC probability-threshold analysis).
pub fn components_of(cd: Dims3, mask: &[bool], min_cells: usize) -> Vec<SurfaceFeature> {
    assert_eq!(mask.len(), cd.len(), "mask does not match cell grid");
    let mut visited = vec![false; mask.len()];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for start in 0..mask.len() {
        if visited[start] || !mask[start] {
            continue;
        }
        visited[start] = true;
        stack.push(start);
        let mut cells = 0usize;
        let mut lo = [usize::MAX; 3];
        let mut hi = [0usize; 3];
        while let Some(i) = stack.pop() {
            let (x, y, z) = cd.coords(i);
            cells += 1;
            for (k, c) in [x, y, z].into_iter().enumerate() {
                lo[k] = lo[k].min(c);
                hi[k] = hi[k].max(c);
            }
            let mut push = |x: isize, y: isize, z: isize| {
                if x < 0 || y < 0 || z < 0 {
                    return;
                }
                let (x, y, z) = (x as usize, y as usize, z as usize);
                if !cd.contains(x, y, z) {
                    return;
                }
                let j = cd.idx(x, y, z);
                if !visited[j] && mask[j] {
                    visited[j] = true;
                    stack.push(j);
                }
            };
            let (xi, yi, zi) = (x as isize, y as isize, z as isize);
            push(xi - 1, yi, zi);
            push(xi + 1, yi, zi);
            push(xi, yi - 1, zi);
            push(xi, yi + 1, zi);
            push(xi, yi, zi - 1);
            push(xi, yi, zi + 1);
        }
        if cells >= min_cells {
            out.push(SurfaceFeature {
                cells,
                bbox: (lo, hi),
            });
        }
    }
    out.sort_by_key(|f| std::cmp::Reverse(f.cells));
    out
}

/// The six tetrahedra of a cube, as corner indices into [`CORNERS`]
/// (a standard body-diagonal decomposition sharing diagonal 0-7).
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 1, 5, 7],
    [0, 2, 3, 7],
    [0, 2, 6, 7],
    [0, 4, 5, 7],
    [0, 4, 6, 7],
];

/// Extracts a watertight isosurface mesh by marching tetrahedra.
///
/// Vertices land on cell edges at the linear interpolation of the isovalue;
/// each tetrahedron contributes 0, 1, or 2 triangles.
pub fn extract_isosurface(field: &Field3, iso: f32) -> IsoMesh {
    let d = field.dims();
    let mut mesh = IsoMesh::default();
    if d.nx < 2 || d.ny < 2 || d.nz < 2 {
        return mesh;
    }
    // Vertex dedup on quantized edge midpoints keeps the mesh watertight
    // without a full edge map (adjacent tets share interpolated positions
    // bit-exactly because the lerp inputs are identical).
    let mut vert_ids: std::collections::HashMap<[u64; 3], u32> = std::collections::HashMap::new();
    let mut add_vertex = |mesh: &mut IsoMesh, p: [f32; 3]| -> u32 {
        let key = [
            p[0].to_bits() as u64,
            p[1].to_bits() as u64,
            p[2].to_bits() as u64,
        ];
        *vert_ids.entry(key).or_insert_with(|| {
            mesh.vertices.push(p);
            (mesh.vertices.len() - 1) as u32
        })
    };

    for cx in 0..d.nx - 1 {
        for cy in 0..d.ny - 1 {
            for cz in 0..d.nz - 1 {
                let corner_pos: [[f32; 3]; 8] = std::array::from_fn(|i| {
                    let (dx, dy, dz) = CORNERS[i];
                    [(cx + dx) as f32, (cy + dy) as f32, (cz + dz) as f32]
                });
                let corner_val: [f32; 8] = std::array::from_fn(|i| {
                    let (dx, dy, dz) = CORNERS[i];
                    field.get(cx + dx, cy + dy, cz + dz)
                });
                for tet in TETS {
                    march_tet(
                        &corner_pos,
                        &corner_val,
                        tet,
                        iso,
                        &mut mesh,
                        &mut add_vertex,
                    );
                }
            }
        }
    }
    mesh
}

fn lerp_edge(pa: [f32; 3], va: f32, pb: [f32; 3], vb: f32, iso: f32) -> [f32; 3] {
    // Canonicalize the edge direction so the same grid edge yields a
    // bit-identical vertex no matter which tetrahedron/cube asks — required
    // for the position-based dedup to keep the mesh watertight.
    let (pa, va, pb, vb) = if pb < pa {
        (pb, vb, pa, va)
    } else {
        (pa, va, pb, vb)
    };
    let t = if (vb - va).abs() < f32::EPSILON {
        0.5
    } else {
        (iso - va) / (vb - va)
    };
    let t = t.clamp(0.0, 1.0);
    [
        pa[0] + t * (pb[0] - pa[0]),
        pa[1] + t * (pb[1] - pa[1]),
        pa[2] + t * (pb[2] - pa[2]),
    ]
}

fn march_tet(
    pos: &[[f32; 3]; 8],
    val: &[f32; 8],
    tet: [usize; 4],
    iso: f32,
    mesh: &mut IsoMesh,
    add_vertex: &mut impl FnMut(&mut IsoMesh, [f32; 3]) -> u32,
) {
    let inside: Vec<usize> = tet.iter().copied().filter(|&i| val[i] >= iso).collect();
    let outside: Vec<usize> = tet.iter().copied().filter(|&i| val[i] < iso).collect();
    match inside.len() {
        0 | 4 => {}
        1 | 3 => {
            // One vertex isolated: a single triangle on the three edges from it.
            let (apex, base) = if inside.len() == 1 {
                (inside[0], outside)
            } else {
                (outside[0], inside)
            };
            let v: Vec<u32> = base
                .iter()
                .map(|&b| add_vertex(mesh, lerp_edge(pos[apex], val[apex], pos[b], val[b], iso)))
                .collect();
            if v[0] != v[1] && v[1] != v[2] && v[0] != v[2] {
                mesh.triangles.push([v[0], v[1], v[2]]);
            }
        }
        2 => {
            // Two/two split: a quad on the four crossing edges → two triangles.
            let (a, b) = (inside[0], inside[1]);
            let (c, d2) = (outside[0], outside[1]);
            let q0 = add_vertex(mesh, lerp_edge(pos[a], val[a], pos[c], val[c], iso));
            let q1 = add_vertex(mesh, lerp_edge(pos[a], val[a], pos[d2], val[d2], iso));
            let q2 = add_vertex(mesh, lerp_edge(pos[b], val[b], pos[d2], val[d2], iso));
            let q3 = add_vertex(mesh, lerp_edge(pos[b], val[b], pos[c], val[c], iso));
            if q0 != q1 && q1 != q2 && q0 != q2 {
                mesh.triangles.push([q0, q1, q2]);
            }
            if q0 != q2 && q2 != q3 && q0 != q3 {
                mesh.triangles.push([q0, q2, q3]);
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_field(n: usize, r: f32) -> Field3 {
        let c = (n - 1) as f32 / 2.0;
        Field3::from_fn(Dims3::cube(n), |x, y, z| {
            r - ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        })
    }

    #[test]
    fn crossings_trace_the_sphere_shell() {
        let f = sphere_field(16, 5.0);
        let (cd, cross) = cell_crossings(&f, 0.0);
        assert_eq!(cd, Dims3::cube(15));
        let count = cross.iter().filter(|&&c| c).count();
        // A radius-5 sphere shell crosses on the order of 4πr² ≈ 314 cells.
        assert!(count > 150 && count < 800, "crossing cells = {count}");
        // Centre cell and far corner are not crossings.
        assert!(!cross[cd.idx(7, 7, 7)]);
        assert!(!cross[cd.idx(0, 0, 0)]);
    }

    #[test]
    fn single_feature_for_sphere() {
        let f = sphere_field(16, 5.0);
        let feats = surface_features(&f, 0.0, 1);
        assert_eq!(feats.len(), 1);
        let c = feats[0].center();
        assert!((c[0] - 7.0).abs() < 1.0);
    }

    #[test]
    fn features_bbox_unions_and_is_half_open() {
        assert_eq!(features_bbox(&[]), None);
        let feats = [
            SurfaceFeature {
                cells: 4,
                bbox: ([1, 2, 3], [4, 5, 6]),
            },
            SurfaceFeature {
                cells: 2,
                bbox: ([0, 7, 3], [2, 9, 4]),
            },
        ];
        let (lo, hi) = features_bbox(&feats).unwrap();
        assert_eq!(lo, [0, 2, 3]);
        assert_eq!(hi, [5, 10, 7]);
    }

    #[test]
    fn two_spheres_two_features() {
        let f = Field3::from_fn(Dims3::cube(24), |x, y, z| {
            let d1 =
                ((x as f32 - 6.0).powi(2) + (y as f32 - 6.0).powi(2) + (z as f32 - 6.0).powi(2))
                    .sqrt();
            let d2 =
                ((x as f32 - 17.0).powi(2) + (y as f32 - 17.0).powi(2) + (z as f32 - 17.0).powi(2))
                    .sqrt();
            (3.0 - d1).max(3.0 - d2)
        });
        let feats = surface_features(&f, 0.0, 1);
        assert_eq!(feats.len(), 2);
    }

    #[test]
    fn mesh_vertices_interpolate_isovalue() {
        let f = sphere_field(12, 4.0);
        let mesh = extract_isosurface(&f, 0.0);
        assert!(mesh.triangle_count() > 50);
        // Every vertex should sit at distance ≈ 4 from the centre (the
        // sphere field is radially linear near the surface).
        let c = 5.5f32;
        for v in &mesh.vertices {
            let r = ((v[0] - c).powi(2) + (v[1] - c).powi(2) + (v[2] - c).powi(2)).sqrt();
            assert!((r - 4.0).abs() < 0.2, "vertex at radius {r}");
        }
    }

    #[test]
    fn mesh_is_edge_watertight() {
        // Every edge of a closed surface must be shared by exactly 2 triangles.
        let f = sphere_field(10, 3.0);
        let mesh = extract_isosurface(&f, 0.0);
        let mut edge_count: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        for t in &mesh.triangles {
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                *edge_count.entry(key).or_insert(0) += 1;
            }
        }
        let bad = edge_count.values().filter(|&&c| c != 2).count();
        assert_eq!(bad, 0, "{bad} non-manifold edges of {}", edge_count.len());
    }

    #[test]
    fn empty_when_iso_outside_range() {
        let f = sphere_field(8, 2.0);
        let mesh = extract_isosurface(&f, 1e9);
        assert_eq!(mesh.triangle_count(), 0);
        let feats = surface_features(&f, 1e9, 1);
        assert!(feats.is_empty());
    }

    #[test]
    fn min_cells_filters_small_features() {
        let f = sphere_field(16, 5.0);
        let all = surface_features(&f, 0.0, 1);
        let big = surface_features(&f, 0.0, all[0].cells + 1);
        assert!(big.is_empty());
    }

    #[test]
    fn degenerate_fields_no_panic() {
        let f = Field3::zeros(Dims3::new(1, 5, 5));
        let mesh = extract_isosurface(&f, 0.5);
        assert_eq!(mesh.triangle_count(), 0);
        let (cd, cross) = cell_crossings(&f, 0.5);
        assert_eq!(cd.len(), 0);
        assert!(cross.is_empty());
    }
}
