//! Probabilistic marching cubes for compression uncertainty (§III-C).
//!
//! Decompressed data is modelled as uncertain: each voxel carries a Gaussian
//! `N(d̂, σ²)` whose parameters come from the compression-error samples the
//! workflow already collects (§III-C "reusing the information"). The
//! probability that the isosurface crosses a cell is
//!
//! `P(cross) = 1 − P(all corners ≥ iso) − P(all corners < iso)`.
//!
//! With independent corners both terms are products of per-corner normal
//! CDFs (the closed form below); the Monte-Carlo variant adds a shared
//! correlation term, following Pöthkow et al.'s correlated model.

use hqmr_grid::{Dims3, Field3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// PMC evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmcConfig {
    /// Isovalue.
    pub iso: f32,
    /// Error standard deviation (uniform; from the sampled error model).
    pub sigma: f64,
    /// Error mean (usually ≈ 0 for error-bounded compressors).
    pub mean: f64,
    /// `None` ⇒ closed-form independent model; `Some((rho, samples, seed))`
    /// ⇒ Monte Carlo with inter-corner correlation `rho`.
    pub monte_carlo: Option<(f64, usize, u64)>,
}

impl PmcConfig {
    /// Independent-Gaussian closed form.
    pub fn independent(iso: f32, mean: f64, sigma: f64) -> Self {
        PmcConfig {
            iso,
            sigma,
            mean,
            monte_carlo: None,
        }
    }

    /// Monte-Carlo with shared correlation `rho` across the cell's corners.
    pub fn correlated(
        iso: f32,
        mean: f64,
        sigma: f64,
        rho: f64,
        samples: usize,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
        PmcConfig {
            iso,
            sigma,
            mean,
            monte_carlo: Some((rho, samples, seed)),
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (|ε| < 1.5·10⁻⁷ — far below the probabilities visualized).
pub fn gaussian_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

const CORNERS: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (1, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Computes the per-cell crossing probability field (cell grid dims returned
/// alongside). Probabilities are in `[0, 1]`.
pub fn crossing_probability_field(field: &Field3, cfg: &PmcConfig) -> (Dims3, Vec<f32>) {
    let d = field.dims();
    let cd = Dims3::new(
        d.nx.saturating_sub(1),
        d.ny.saturating_sub(1),
        d.nz.saturating_sub(1),
    );
    if cd.is_empty() {
        return (cd, Vec::new());
    }
    let sigma = cfg.sigma.max(1e-300);
    let mut out = vec![0f32; cd.len()];
    match cfg.monte_carlo {
        None => {
            out.par_chunks_mut(cd.ny * cd.nz)
                .enumerate()
                .for_each(|(x, slab)| {
                    for y in 0..cd.ny {
                        for z in 0..cd.nz {
                            // P(corner < iso) per corner; independence ⇒ products.
                            let mut p_all_below = 1.0f64;
                            let mut p_all_above = 1.0f64;
                            for (dx, dy, dz) in CORNERS {
                                let mu = field.get(x + dx, y + dy, z + dz) as f64 + cfg.mean;
                                let p_below = gaussian_cdf((cfg.iso as f64 - mu) / sigma);
                                p_all_below *= p_below;
                                p_all_above *= 1.0 - p_below;
                            }
                            slab[y * cd.nz + z] =
                                (1.0 - p_all_below - p_all_above).clamp(0.0, 1.0) as f32;
                        }
                    }
                });
        }
        Some((rho, samples, seed)) => {
            let sr = rho.sqrt();
            let si = (1.0 - rho).sqrt();
            out.par_chunks_mut(cd.ny * cd.nz)
                .enumerate()
                .for_each(|(x, slab)| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (x as u64).wrapping_mul(0x9E37));
                    let mut normal = move || {
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    };
                    for y in 0..cd.ny {
                        for z in 0..cd.nz {
                            let mus: [f64; 8] = std::array::from_fn(|i| {
                                let (dx, dy, dz) = CORNERS[i];
                                field.get(x + dx, y + dy, z + dz) as f64 + cfg.mean
                            });
                            let mut crossings = 0usize;
                            for _ in 0..samples {
                                let shared = normal();
                                let mut above = false;
                                let mut below = false;
                                for mu in mus {
                                    let v = mu + sigma * (sr * shared + si * normal());
                                    if v >= cfg.iso as f64 {
                                        above = true;
                                    } else {
                                        below = true;
                                    }
                                }
                                if above && below {
                                    crossings += 1;
                                }
                            }
                            slab[y * cd.nz + z] = crossings as f32 / samples as f32;
                        }
                    }
                });
        }
    }
    (cd, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((gaussian_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((gaussian_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((gaussian_cdf(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!(gaussian_cdf(8.0) > 1.0 - 1e-14);
        assert!(gaussian_cdf(-8.0) < 1e-14);
    }

    fn ramp_field() -> Field3 {
        // Linear in x: isosurface at x = 7.5 for iso = 7.5.
        Field3::from_fn(Dims3::cube(16), |x, _, _| x as f32)
    }

    #[test]
    fn certain_crossing_has_probability_one() {
        let f = ramp_field();
        let cfg = PmcConfig::independent(7.5, 0.0, 1e-6);
        let (cd, p) = crossing_probability_field(&f, &cfg);
        // Cells spanning x ∈ [7, 8] certainly cross.
        assert!(p[cd.idx(7, 8, 8)] > 0.999);
        // Cells far away certainly don't.
        assert!(p[cd.idx(0, 8, 8)] < 1e-6);
        assert!(p[cd.idx(14, 8, 8)] < 1e-6);
    }

    #[test]
    fn uncertainty_spreads_the_surface() {
        let f = ramp_field();
        let tight = crossing_probability_field(&f, &PmcConfig::independent(7.5, 0.0, 0.01)).1;
        let wide = crossing_probability_field(&f, &PmcConfig::independent(7.5, 0.0, 2.0)).1;
        let count = |p: &Vec<f32>| p.iter().filter(|&&v| v > 0.05).count();
        assert!(
            count(&wide) > 3 * count(&tight),
            "{} vs {}",
            count(&wide),
            count(&tight)
        );
    }

    #[test]
    fn probability_bounded() {
        let f = ramp_field();
        let (_, p) = crossing_probability_field(&f, &PmcConfig::independent(7.5, 0.1, 0.5));
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Small ramp for the Monte-Carlo tests (debug-mode sampling is slow).
    fn small_ramp() -> Field3 {
        Field3::from_fn(Dims3::cube(8), |x, _, _| x as f32)
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form_when_independent() {
        let f = small_ramp();
        let exact = crossing_probability_field(&f, &PmcConfig::independent(3.5, 0.0, 1.0)).1;
        let mc =
            crossing_probability_field(&f, &PmcConfig::correlated(3.5, 0.0, 1.0, 0.0, 3000, 7)).1;
        let max_dev = exact
            .iter()
            .zip(&mc)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(max_dev < 0.06, "max deviation {max_dev}");
    }

    #[test]
    fn full_correlation_reduces_crossing_probability() {
        // With rho = 1 all corners move together, so a far-away cell only
        // crosses when the shared shift lands the isovalue inside the cell's
        // (narrow) value span — much rarer than under independence.
        let f = small_ramp();
        let ind = crossing_probability_field(&f, &PmcConfig::independent(5.5, 0.0, 2.0)).1;
        let cor =
            crossing_probability_field(&f, &PmcConfig::correlated(5.5, 0.0, 2.0, 1.0, 3000, 3)).1;
        let cd = Dims3::cube(7);
        let far = cd.idx(1, 4, 4); // all corners below iso
        assert!(ind[far] > 0.05, "independent model spreads to {}", ind[far]);
        assert!(
            cor[far] < 0.6 * ind[far],
            "correlated {} vs independent {}",
            cor[far],
            ind[far]
        );
    }

    #[test]
    fn full_correlation_never_crosses_constant_cells() {
        // All eight corners equal ⇒ under rho = 1 they can never straddle.
        let f = Field3::new(Dims3::cube(6), 5.0);
        let (cd, p) =
            crossing_probability_field(&f, &PmcConfig::correlated(5.5, 0.0, 2.0, 1.0, 2000, 9));
        assert!(p[cd.idx(2, 2, 2)] == 0.0);
        // Independent corners do cross.
        let (_, pi) = crossing_probability_field(&f, &PmcConfig::independent(5.5, 0.0, 2.0));
        assert!(pi[cd.idx(2, 2, 2)] > 0.3);
    }

    #[test]
    fn recovers_features_destroyed_by_bias() {
        // A small bump that compression error pushed just below the isovalue:
        // deterministic extraction loses it; PMC shows nonzero probability.
        let f = Field3::from_fn(Dims3::cube(12), |x, y, z| {
            let r2 = (x as f32 - 5.5).powi(2) + (y as f32 - 5.5).powi(2) + (z as f32 - 5.5).powi(2);
            0.95 * (-r2 / 6.0).exp() // peak 0.95 < iso 1.0
        });
        let (cd, cross) = crate::iso::cell_crossings(&f, 1.0);
        assert!(
            cross.iter().all(|&c| !c),
            "deterministic surface must be empty"
        );
        let (_, p) = crossing_probability_field(&f, &PmcConfig::independent(1.0, 0.0, 0.1));
        assert!(
            p[cd.idx(5, 5, 5)] > 0.2,
            "PMC must flag the lost feature, got {}",
            p[cd.idx(5, 5, 5)]
        );
    }
}
