//! `hqmr` — umbrella crate for the SC'24 multi-resolution reduction workflow.
//!
//! Re-exports the public API of every workspace crate. Downstream users depend
//! on this crate alone; the examples under `examples/` show the intended entry
//! points:
//!
//! * [`workflow`] ([`hqmr_core`]) — the paper's contribution: ROI-driven
//!   multi-resolution conversion, SZ3MR compression, error-bounded Bézier
//!   post-processing, and compression-uncertainty modelling.
//! * [`grid`] — fields and synthetic dataset proxies.
//! * [`sz2`], [`sz3`], [`zfp`] — the three from-scratch compressors.
//! * [`mr`] — the multi-resolution data model (ROI, AMR, merges, padding).
//! * [`metrics`], [`filters`], [`vis`] — analysis and visualization.

pub use hqmr_codec as codec;
pub use hqmr_core as workflow;
pub use hqmr_fft as fft;
pub use hqmr_filters as filters;
pub use hqmr_grid as grid;
pub use hqmr_metrics as metrics;
pub use hqmr_mr as mr;
pub use hqmr_sz2 as sz2;
pub use hqmr_sz3 as sz3;
pub use hqmr_vis as vis;
pub use hqmr_zfp as zfp;
