//! `hqmr` — umbrella crate for the SC'24 multi-resolution reduction workflow.
//!
//! Re-exports the public API of every workspace crate. Downstream users depend
//! on this crate alone; the examples under `examples/` show the intended entry
//! points:
//!
//! * [`workflow`] ([`hqmr_core`]) — the paper's contribution: ROI-driven
//!   multi-resolution conversion, backend-generic MRC compression,
//!   error-bounded Bézier post-processing, and compression-uncertainty
//!   modelling.
//! * [`store`] — the seekable, block-indexed multi-resolution container:
//!   per-chunk compression behind the same codec boundary, serving level,
//!   ROI, isovalue-skip, and coarse→fine progressive reads without
//!   decompressing the rest of the file.
//! * [`serve`] — the concurrent serving layer over a shared store reader:
//!   a byte-budgeted decoded-chunk LRU cache with single-flight decode and
//!   a batched query planner, for many clients hammering one container
//!   (`examples/roi_storm.rs` is the demo).
//! * [`net`] — the serving fleet over TCP: a length-framed, CRC-guarded
//!   wire protocol, dataset-sharded workers with bounded queues and typed
//!   `Busy` backpressure, a blocking client, and the `netd` multi-store
//!   server binary (`examples/net_storm.rs` is the remote demo).
//! * [`grid`] — fields and synthetic dataset proxies.
//! * [`sz2`], [`sz3`], [`zfp`] — the three from-scratch compressors.
//! * [`mr`] — the multi-resolution data model (ROI, AMR, merges, padding).
//! * [`metrics`], [`filters`], [`vis`] — analysis and visualization.
//!
//! # The codec boundary
//!
//! Every compressor implements one trait, [`codec::Codec`] in [`hqmr_codec`]:
//!
//! ```text
//! compress(&Field3, eb) -> Vec<u8>          // self-describing stream
//! decompress(&[u8]) -> Result<Field3, CodecError>
//! id() -> u32                               // 4-byte stream id, e.g. "SZ3S"
//! ```
//!
//! The multi-resolution engine ([`workflow::mrc`]) is generic over that
//! boundary: it merges and pads unit blocks the same way regardless of
//! backend, dispatches the per-array compression through `&dyn Codec`,
//! records the codec id in its container, and routes decompression on the
//! stored id. The workflow's compressor choice is therefore a cross product —
//! [`workflow::Arrangement`] (linear / padded / stacked / boxed) ×
//! [`workflow::mrc::Backend`] (SZ3 / SZ2 / ZFP / passthrough):
//!
//! ```
//! use hqmr::grid::synth;
//! use hqmr::workflow::{run_uniform_workflow, Backend, CompressorChoice, WorkflowConfig};
//!
//! let field = synth::nyx_like(32, 1);
//! let mut cfg = WorkflowConfig::new(1e-3);
//! cfg.compressor = CompressorChoice::ours().with_backend(Backend::ZFP);
//! let result = run_uniform_workflow(&field, &cfg).expect("fresh stream round-trips");
//! assert_eq!(result.mr_stats.codec, "zfp");
//! ```
//!
//! # Adding a backend
//!
//! A new compressor participates in the whole pipeline by implementing
//! [`codec::Codec`] (unique id, self-describing stream, bound honoured,
//! foreign streams rejected with `WrongStreamId`) and registering the id in
//! [`workflow::mrc::Backend`]. `crates/README.md` walks through the recipe;
//! [`codec::NullCodec`] — the raw passthrough used for debugging — is the
//! minimal worked example.

pub use hqmr_codec as codec;
pub use hqmr_core as workflow;
pub use hqmr_fft as fft;
pub use hqmr_filters as filters;
pub use hqmr_grid as grid;
pub use hqmr_metrics as metrics;
pub use hqmr_mr as mr;
pub use hqmr_net as net;
pub use hqmr_serve as serve;
pub use hqmr_store as store;
pub use hqmr_sz2 as sz2;
pub use hqmr_sz3 as sz3;
pub use hqmr_vis as vis;
pub use hqmr_zfp as zfp;
