//! Property tests for the runtime SIMD dispatch layer in
//! `hqmr_codec::kernels`: for arbitrary field shapes — degenerate axes,
//! non-power-of-two line lengths, values spanning smooth and rough content —
//! the dispatched kernels and the forced-scalar arm must produce
//! byte-identical streams, and each arm must decode the other's output to
//! the same reconstruction.
//!
//! The force-scalar switch is process-global, so every toggle lives inside a
//! single `#[test]` per codec family and is always restored; the properties
//! themselves hold under either ambient arm, so the three tests may still
//! run concurrently.

use hqmr::codec::kernels;
use hqmr::grid::{Dims3, Field3};
use proptest::prelude::*;

/// Deterministic field mixing a smooth ramp with value-dependent roughness,
/// so quantizer fast paths and outlier/replay paths both get exercised.
fn mk_field(nx: usize, ny: usize, nz: usize, seed: u32) -> Field3 {
    let dims = Dims3::new(nx, ny, nz);
    let mut x = seed as u64 | 1;
    let data: Vec<f32> = (0..dims.len())
        .map(|i| {
            x = x.rotate_left(13).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let rough = ((x >> 40) as f64 / (1 << 24) as f64) - 0.5;
            (i as f64 * 0.37).sin() as f32 * 100.0 + rough as f32 * (i % 7) as f32
        })
        .collect();
    Field3::from_vec(dims, data)
}

/// Compresses under both dispatch arms and asserts byte identity, then
/// cross-decodes: the scalar arm decodes the SIMD stream and vice versa.
fn assert_arms_identical(
    f: &Field3,
    compress: impl Fn(&Field3) -> Vec<u8>,
    decompress: impl Fn(&[u8]) -> Field3,
) {
    kernels::set_force_scalar(false);
    let simd = compress(f);
    kernels::set_force_scalar(true);
    let scalar = compress(f);
    assert_eq!(simd, scalar, "compressed streams differ between arms");
    let dec_scalar = decompress(&simd);
    kernels::set_force_scalar(false);
    let dec_simd = decompress(&scalar);
    assert_eq!(
        dec_simd.data(),
        dec_scalar.data(),
        "reconstructions differ between arms"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SZ3's interpolation sweeps hit every `LineGeom` split (mid head,
    /// cubic run, mid tail, extrapolated boundary) as the axes vary.
    #[test]
    fn sz3_dispatch_arms_identical(
        nx in 1usize..12, ny in 1usize..14, nz in 1usize..40, seed in any::<u32>(),
    ) {
        let f = mk_field(nx, ny, nz, seed);
        let cfg = hqmr::sz3::Sz3Config::new(0.5);
        assert_arms_identical(
            &f,
            |f| hqmr::sz3::compress(f, &cfg).bytes,
            |b| hqmr::sz3::decompress(b).expect("fresh stream decodes"),
        );
    }

    /// SZ2's block Lorenzo path, including partial edge blocks.
    #[test]
    fn sz2_dispatch_arms_identical(
        nx in 1usize..12, ny in 1usize..14, nz in 1usize..40, seed in any::<u32>(),
    ) {
        let f = mk_field(nx, ny, nz, seed);
        let cfg = hqmr::sz2::Sz2Config::new(0.5);
        assert_arms_identical(
            &f,
            |f| hqmr::sz2::compress(f, &cfg).bytes,
            |b| hqmr::sz2::decompress(b).expect("fresh stream decodes"),
        );
    }

    /// ZFP's 4³-block lifting, including partial blocks on every face.
    #[test]
    fn zfp_dispatch_arms_identical(
        nx in 1usize..12, ny in 1usize..14, nz in 1usize..40, seed in any::<u32>(),
    ) {
        let f = mk_field(nx, ny, nz, seed);
        let cfg = hqmr::zfp::ZfpConfig::new(0.5);
        assert_arms_identical(
            &f,
            |f| hqmr::zfp::compress(f, &cfg).bytes,
            |b| hqmr::zfp::decompress(b).expect("fresh stream decodes"),
        );
    }
}
