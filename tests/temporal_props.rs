//! Temporal-store properties, run over every codec backend:
//!
//! * with prediction **off**, each frame file of an `HQTM` directory is
//!   byte-identical to the independent snapshot `write_snapshot` would have
//!   produced for the same timestep — the temporal container is a strict
//!   superset of the snapshot path, not a fork of it;
//! * with prediction **on**, a time-windowed ROI read equals the per-frame
//!   ROI reads, and the serving layer returns the same bytes as the bare
//!   reader at any cache budget.

use hqmr::grid::{synth, Dims3, Field3};
use hqmr::mr::{resample_like, to_adaptive, MultiResData, RoiConfig};
use hqmr::serve::TemporalServer;
use hqmr::store::temporal::{Prediction, TemporalReader};
use hqmr::workflow::mrc::{Backend, MrcConfig};
use hqmr::workflow::{write_snapshot, TemporalWriter};
use std::path::PathBuf;
use std::sync::Arc;

const STEPS: usize = 4;

/// A small advected sequence poured into a frame-stable block layout.
fn sequence() -> Vec<MultiResData> {
    let frames = synth::advected_sequence(Dims3::cube(16), STEPS, [0.5, 0.25, 0.0], 21);
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    frames.iter().map(|f| resample_like(&template, f)).collect()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(backend: Backend) -> MrcConfig {
    // eb relative to the unit-variance GRF's typical range.
    MrcConfig::baseline(0.02).with_backend(backend)
}

#[test]
fn prediction_off_frames_are_bit_identical_to_independent_snapshots() {
    let mrs = sequence();
    for backend in Backend::ALL {
        let cfg = config(backend);
        let dir = fresh_dir(&format!("hqmr_tprops_off_{}", backend.name()));
        let mut writer = TemporalWriter::create(&dir, &cfg, Prediction::Off).unwrap();
        for (t, mr) in mrs.iter().enumerate() {
            let rep = writer.append(t as u64, mr).unwrap();
            assert_eq!(rep.delta_chunks, 0, "{backend:?}: prediction off");

            let snap = dir.join(format!("snap_{t}.bin"));
            write_snapshot(mr, &cfg, &snap).unwrap();
            let independent = std::fs::read(&snap).unwrap();
            let temporal = std::fs::read(dir.join(&rep.file)).unwrap();
            assert_eq!(
                temporal, independent,
                "{backend:?} frame {t}: delta-off frame must be byte-identical \
                 to an independent snapshot"
            );
            std::fs::remove_file(&snap).unwrap();
        }
        // The directory (with the snapshots removed) still opens and serves.
        let reader = TemporalReader::open(&dir).unwrap();
        assert_eq!(reader.frame_count(), STEPS);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn window_roi_equals_per_frame_roi_for_every_backend() {
    let mrs = sequence();
    let (lo, hi) = ([2, 2, 2], [14, 14, 10]);
    for backend in Backend::ALL {
        let cfg = config(backend);
        let dir = fresh_dir(&format!("hqmr_tprops_win_{}", backend.name()));
        let mut writer = TemporalWriter::create(&dir, &cfg, Prediction::delta()).unwrap();
        for (t, mr) in mrs.iter().enumerate() {
            writer.append(t as u64, mr).unwrap();
        }
        let reader = TemporalReader::open(&dir).unwrap();

        let window = reader
            .read_roi_window(0, STEPS - 1, 0, lo, hi, 0.0)
            .unwrap();
        let per_frame: Vec<Field3> = (0..STEPS)
            .map(|t| reader.read_roi(t, 0, lo, hi, 0.0).unwrap())
            .collect();
        assert_eq!(
            window, per_frame,
            "{backend:?}: windowed ROI must equal per-frame ROI reads"
        );

        // A window starting mid-chain re-derives the same bytes from the
        // nearest keyframe.
        let tail = reader
            .read_roi_window(1, STEPS - 1, 0, lo, hi, 0.0)
            .unwrap();
        assert_eq!(tail, per_frame[1..], "{backend:?}: mid-chain window");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn serve_layer_matches_bare_reader_at_every_cache_budget() {
    let mrs = sequence();
    let (lo, hi) = ([0, 0, 0], [16, 16, 8]);
    let backend = Backend::SZ3;
    let dir = fresh_dir("hqmr_tprops_serve");
    let mut writer = TemporalWriter::create(&dir, &config(backend), Prediction::delta()).unwrap();
    for (t, mr) in mrs.iter().enumerate() {
        writer.append(t as u64, mr).unwrap();
    }
    let reader = Arc::new(TemporalReader::open(&dir).unwrap());
    let want: Vec<Field3> = (0..STEPS)
        .map(|t| reader.read_roi(t, 0, lo, hi, 0.0).unwrap())
        .collect();
    for budget in [0, 4096, usize::MAX] {
        let server = TemporalServer::new(Arc::clone(&reader), budget);
        let got = server
            .read_roi_window(0, STEPS - 1, 0, lo, hi, 0.0)
            .unwrap();
        assert_eq!(got, want, "budget {budget}: server must match bare reader");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
