//! Cross-crate integration tests: the invariants DESIGN.md §5 promises,
//! checked through the full public API.

use hqmr::grid::{synth, Dims3, Field3};
use hqmr::metrics::{max_abs_err, psnr};
use hqmr::mr::{to_adaptive, to_amr, AmrConfig, MergeStrategy, RoiConfig, Upsample};
use hqmr::workflow::{
    bezier_pass, compress_mr, decompress_mr, run_uniform_workflow, select_intensity, Backend,
    MrcConfig, PostConfig, WorkflowConfig,
};

fn stored_max_err(a: &hqmr::mr::MultiResData, b: &hqmr::mr::MultiResData) -> f64 {
    let mut worst = 0.0f64;
    for (la, lb) in a.levels.iter().zip(&b.levels) {
        for (ba, bb) in la.blocks.iter().zip(&lb.blocks) {
            for (&x, &y) in ba.data.iter().zip(&bb.data) {
                worst = worst.max((x as f64 - y as f64).abs());
            }
        }
    }
    worst
}

/// Error bound holds across every merge × pad × eb-policy combination on
/// every multi-resolution dataset family.
#[test]
fn error_bound_holds_across_all_pipeline_combinations() {
    let fields = [
        ("nyx", synth::nyx_like(32, 5)),
        ("warpx", synth::warpx_like(Dims3::new(16, 16, 128), 6)),
        ("rt", synth::rt_like(32, 7)),
    ];
    for (name, f) in fields {
        let mr = to_amr(&f, &AmrConfig::new(8, vec![0.25, 0.75]));
        let eb = f.range() as f64 * 1e-3;
        let mut configs = vec![
            MrcConfig::baseline(eb),
            MrcConfig::amric(eb),
            MrcConfig::tac(eb),
            MrcConfig::ours_pad(eb),
            MrcConfig::ours(eb),
        ];
        // The codec axis: every backend honours the same bound through the
        // same arrangement.
        configs.extend(Backend::ALL.map(|b| MrcConfig::ours_pad(eb).with_backend(b)));
        for cfg in configs {
            let (bytes, _) = compress_mr(&mr, &cfg);
            let back = decompress_mr(&bytes).unwrap();
            let err = stored_max_err(&mr, &back);
            assert!(err <= eb + 1e-9, "{name} {cfg:?}: err {err} > eb {eb}");
        }
    }
}

/// The three standalone compressors all honour their bounds on all dataset
/// proxies.
#[test]
fn all_compressors_bounded_on_all_proxies() {
    let fields = [
        synth::nyx_like(32, 1),
        synth::s3d_like(32, 2),
        synth::hurricane_like(Dims3::new(32, 32, 8), 3),
        synth::rt_like(32, 4),
    ];
    for f in &fields {
        let eb = f.range() as f64 * 5e-3;
        // SZ3
        let r = hqmr::sz3::compress(f, &hqmr::sz3::Sz3Config::new(eb));
        let d = hqmr::sz3::decompress(&r.bytes).unwrap();
        assert!(max_abs_err(f, &d) <= eb);
        // SZ2
        let r = hqmr::sz2::compress(f, &hqmr::sz2::Sz2Config::new(eb));
        let d = hqmr::sz2::decompress(&r.bytes).unwrap();
        assert!(max_abs_err(f, &d) <= eb);
        // ZFP
        let r = hqmr::zfp::compress(f, &hqmr::zfp::ZfpConfig::new(eb));
        let d = hqmr::zfp::decompress(&r.bytes).unwrap();
        assert!(max_abs_err(f, &d) <= eb);
    }
}

/// Post-processing never pushes a value outside `d ± a·eb` per pass and never
/// worsens PSNR materially (the selector's conservative fallback).
#[test]
fn post_process_is_bounded_and_safe() {
    let f = synth::s3d_like(32, 9);
    let eb = f.range() as f64 * 1e-2;
    let r = hqmr::sz2::compress(&f, &hqmr::sz2::Sz2Config::new(eb));
    let dec = hqmr::sz2::decompress(&r.bytes).unwrap();
    let cfg = PostConfig::sz2();
    let choice = select_intensity(&f, &dec, eb, &cfg);
    let post = bezier_pass(&dec, eb, choice.a, &cfg);
    // Pointwise clamp: three sequential passes, each ≤ a·eb.
    let a_max = choice.a.iter().fold(0.0f64, |m, &a| m.max(a));
    assert!(max_abs_err(&dec, &post) <= 3.0 * a_max * eb + 1e-9);
    // Quality is preserved or improved.
    assert!(psnr(&f, &post) >= psnr(&f, &dec) - 0.05);
}

/// ROI → compress → decompress → reconstruct: ROI cells still honour the
/// bound end to end (non-ROI cells additionally carry resampling error).
#[test]
fn roi_cells_bounded_end_to_end() {
    let f = synth::nyx_like(32, 10);
    let cfg = RoiConfig::new(8, 0.3);
    let mr = to_adaptive(&f, &cfg);
    let eb = f.range() as f64 * 1e-3;
    let (bytes, _) = compress_mr(&mr, &MrcConfig::ours(eb));
    let back = decompress_mr(&bytes).unwrap();
    let recon = back.reconstruct(Upsample::Nearest);
    // Check every cell covered by a fine-level (ROI) block.
    for b in &mr.levels[0].blocks {
        for dx in 0..8 {
            for dy in 0..8 {
                for dz in 0..8 {
                    let (x, y, z) = (b.origin[0] + dx, b.origin[1] + dy, b.origin[2] + dz);
                    let err = (f.get(x, y, z) as f64 - recon.get(x, y, z) as f64).abs();
                    assert!(err <= eb + 1e-9, "ROI cell ({x},{y},{z}) err {err}");
                }
            }
        }
    }
}

/// The one-call workflow produces consistent artifacts.
#[test]
fn workflow_end_to_end_consistency() {
    let f = synth::nyx_like(32, 11);
    let mut cfg = WorkflowConfig::new(2e-3);
    cfg.roi = RoiConfig::new(8, 0.4);
    cfg.uncertainty_iso = Some(f.range() * 0.5);
    let r = run_uniform_workflow(&f, &cfg).expect("workflow");
    assert_eq!(r.reconstruction.dims(), f.dims());
    assert!(r.end_to_end_ratio > 1.0);
    assert!(r.error_model.is_some());
    // The compressed stream decodes to the same reconstruction basis.
    let back = decompress_mr(&r.compressed).unwrap();
    assert_eq!(back.domain, f.dims());
}

/// Merge strategies are lossless layout transforms: identity round-trip
/// through compress/decompress at a tiny bound is value-stable.
#[test]
fn merges_are_structure_preserving() {
    let f = synth::rt_like(32, 12);
    let mr = to_amr(&f, &AmrConfig::new(8, vec![0.5, 0.5]));
    for merge in [
        MergeStrategy::Linear,
        MergeStrategy::Stack,
        MergeStrategy::Tac,
    ] {
        let cfg = MrcConfig {
            merge,
            ..MrcConfig::baseline(1e-6)
        };
        let (bytes, _) = compress_mr(&mr, &cfg);
        let back = decompress_mr(&bytes).unwrap();
        assert_eq!(back.levels[0].blocks.len(), mr.levels[0].blocks.len());
        for (a, b) in mr.levels[0].blocks.iter().zip(&back.levels[0].blocks) {
            assert_eq!(a.origin, b.origin, "{merge:?} reordered blocks");
        }
        assert!(stored_max_err(&mr, &back) <= 1e-6);
    }
}

/// Compressed streams survive serialization to disk and back.
#[test]
fn streams_are_self_describing_files() {
    let f = synth::s3d_like(32, 13);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    let eb = f.range() as f64 * 1e-3;
    let (bytes, _) = compress_mr(&mr, &MrcConfig::ours(eb));
    let path = std::env::temp_dir().join("hqmr_integration_stream.bin");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let back = decompress_mr(&loaded).unwrap();
    assert!(stored_max_err(&mr, &back) <= eb + 1e-9);
}

/// Degenerate inputs flow through the full pipeline without panicking.
#[test]
fn degenerate_inputs_handled() {
    // Constant field: everything compresses to almost nothing.
    let f = Field3::new(Dims3::cube(32), 7.5);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    let (bytes, stats) = compress_mr(&mr, &MrcConfig::ours(1e-3));
    assert!(stats.ratio() > 50.0, "constant field CR {}", stats.ratio());
    let back = decompress_mr(&bytes).unwrap();
    assert!(stored_max_err(&mr, &back) <= 1e-3);
}
