//! Differential property suite for the prediction/quantization kernel
//! overhaul: the batched, direction-specialized line kernels (SZ3), the
//! interior/boundary-split Lorenzo + hoisted plane kernels (SZ2), and the
//! in-place/fused transform + batched bit-plane decode (ZFP) must be
//! *bit-identical* to the pre-overhaul per-point implementations they
//! replaced — same compressed streams out, same reconstructions (or the
//! same typed error) back.
//!
//! Coverage deliberately includes non-power-of-two and degenerate extents
//! (1×N×M lines and planes, single-point arrays): those are where boundary
//! peeling and line-geometry math would break first. The final test runs
//! every backend × arrangement over the real multi-resolution prepare stage,
//! comparing production streams against reference streams per prepared
//! array.

use hqmr::grid::{synth, Dims3, Field3};
use hqmr::mr::{to_adaptive, MergeStrategy, PadKind, RoiConfig};
use hqmr::workflow::mrc::Backend;
use hqmr_sz3::{InterpKind, LevelEbPolicy, Sz3Config};

/// Shapes that stress every kernel edge: cubes, non-power-of-two extents,
/// thin slabs, pure lines, and single points.
const SHAPES: [Dims3; 10] = [
    Dims3::new(1, 1, 1),
    Dims3::new(2, 1, 1),
    Dims3::new(1, 1, 17),
    Dims3::new(1, 31, 2),
    Dims3::new(1, 9, 40),
    Dims3::new(5, 3, 7),
    Dims3::new(8, 8, 8),
    Dims3::new(9, 9, 33),
    Dims3::new(17, 17, 24),
    Dims3::new(4, 4, 97),
];

/// Deterministic rough field: integer arithmetic only (bit-stable), with a
/// spike to exercise the outlier path and a plateaued region for zero-ish
/// residuals.
fn rough(dims: Dims3, salt: u32) -> Field3 {
    let mut f = Field3::from_fn(dims, |x, y, z| {
        let h = (x as u32)
            .wrapping_mul(31)
            .wrapping_add((y as u32).wrapping_mul(17))
            .wrapping_add((z as u32).wrapping_mul(7))
            .wrapping_add(salt)
            % 97;
        let p = (x / 3 + y / 3 + z / 5) % 2;
        h as f32 * 0.25 + p as f32 * 10.0 - 12.0
    });
    if dims.len() > 8 {
        let (cx, cy, cz) = (dims.nx / 2, dims.ny / 2, dims.nz / 2);
        f.set(cx, cy, cz, 3.0e4);
    }
    f
}

#[test]
fn sz3_kernels_match_reference_streams() {
    for (i, dims) in SHAPES.into_iter().enumerate() {
        let f = rough(dims, i as u32);
        for interp in [InterpKind::Linear, InterpKind::Cubic] {
            for level_eb in [None, Some(LevelEbPolicy::PAPER)] {
                for eb in [1e-1, 1e-3] {
                    let mut cfg = Sz3Config::new(eb).with_interp(interp);
                    if let Some(p) = level_eb {
                        cfg = cfg.with_level_eb(p);
                    }
                    let fast = hqmr_sz3::compress(&f, &cfg);
                    let slow = hqmr_sz3::reference::compress(&f, &cfg);
                    assert_eq!(
                        fast.bytes, slow.bytes,
                        "sz3 {dims} {interp:?} eb={eb} level_eb={level_eb:?}: stream drift"
                    );
                    assert_eq!(fast.stats, slow.stats, "sz3 {dims}: stats drift");
                    assert_eq!(fast.outliers, slow.outliers, "sz3 {dims}: outlier drift");
                    let df = hqmr_sz3::decompress(&fast.bytes).expect("fresh stream decodes");
                    let ds = hqmr_sz3::reference::decompress(&fast.bytes).unwrap();
                    assert_eq!(
                        as_bits(&df),
                        as_bits(&ds),
                        "sz3 {dims} {interp:?}: reconstruction drift"
                    );
                }
            }
        }
    }
}

#[test]
fn sz2_kernels_match_reference_streams() {
    for (i, dims) in SHAPES.into_iter().enumerate() {
        let f = rough(dims, 1000 + i as u32);
        for block in [2usize, 4, 6] {
            for eb in [1e-1, 1e-3] {
                let cfg = hqmr::sz2::Sz2Config { eb, block };
                let fast = hqmr_sz2::compress(&f, &cfg);
                let slow = hqmr_sz2::reference::compress(&f, &cfg);
                assert_eq!(
                    fast.bytes, slow.bytes,
                    "sz2 {dims} block={block} eb={eb}: stream drift"
                );
                assert_eq!(
                    (fast.lorenzo_blocks, fast.regression_blocks, fast.outliers),
                    (slow.lorenzo_blocks, slow.regression_blocks, slow.outliers),
                    "sz2 {dims}: selection drift"
                );
                let df = hqmr_sz2::decompress(&fast.bytes).expect("fresh stream decodes");
                let ds = hqmr_sz2::reference::decompress(&fast.bytes).unwrap();
                assert_eq!(
                    as_bits(&df),
                    as_bits(&ds),
                    "sz2 {dims}: reconstruction drift"
                );
            }
        }
    }
}

#[test]
fn zfp_kernels_match_reference_streams() {
    for (i, dims) in SHAPES.into_iter().enumerate() {
        let f = rough(dims, 2000 + i as u32);
        for tol in [1.0, 1e-2] {
            let cfg = hqmr::zfp::ZfpConfig::new(tol);
            let fast = hqmr_zfp::compress(&f, &cfg);
            let slow = hqmr_zfp::reference::compress(&f, &cfg);
            assert_eq!(fast.bytes, slow.bytes, "zfp {dims} tol={tol}: stream drift");
            assert_eq!(
                fast.zero_blocks, slow.zero_blocks,
                "zfp {dims}: zero-block drift"
            );
            let df = hqmr_zfp::decompress(&fast.bytes).expect("fresh stream decodes");
            let ds = hqmr_zfp::reference::decompress(&fast.bytes).unwrap();
            assert_eq!(
                as_bits(&df),
                as_bits(&ds),
                "zfp {dims}: reconstruction drift"
            );
        }
    }
}

/// Truncated and corrupted streams must fail identically through both
/// decode paths — kernels may not change error behaviour.
#[test]
fn corrupt_streams_fail_identically() {
    let f = rough(Dims3::new(9, 9, 33), 77);
    let sz3 = hqmr_sz3::compress(&f, &Sz3Config::new(1e-3)).bytes;
    let sz2 = hqmr_sz2::compress(&f, &hqmr::sz2::Sz2Config { eb: 1e-3, block: 4 }).bytes;
    let zfp = hqmr_zfp::compress(&f, &hqmr::zfp::ZfpConfig::new(1e-2)).bytes;
    for cut in [0usize, 7, 40] {
        let c3 = &sz3[..sz3.len().min(cut.max(1) * sz3.len() / 41)];
        assert_eq!(
            hqmr_sz3::decompress(c3).is_err(),
            hqmr_sz3::reference::decompress(c3).is_err(),
            "sz3 truncation outcome drift at {cut}"
        );
        let c2 = &sz2[..sz2.len().min(cut.max(1) * sz2.len() / 41)];
        assert_eq!(
            hqmr_sz2::decompress(c2).is_err(),
            hqmr_sz2::reference::decompress(c2).is_err(),
            "sz2 truncation outcome drift at {cut}"
        );
        let cz = &zfp[..zfp.len().min(cut.max(1) * zfp.len() / 41)];
        assert_eq!(
            hqmr_zfp::decompress(cz).is_err(),
            hqmr_zfp::reference::decompress(cz).is_err(),
            "zfp truncation outcome drift at {cut}"
        );
    }
}

/// Every backend × arrangement over the *real* multi-resolution prepare
/// stage: the production codec must emit bit-identical streams to its
/// reference twin for every prepared array (merged, padded, degenerate
/// small-dims linear shapes included). The null backend has no kernels and
/// serves as the layout control: its stream must round-trip the prepared
/// arrays losslessly.
#[test]
fn all_backends_and_arrangements_are_bit_identical() {
    let field = synth::nyx_like(32, 5);
    let mr = to_adaptive(&field, &RoiConfig::new(8, 0.5));
    let eb = field.range() as f64 * 2e-3;
    let arrangements: [(MergeStrategy, Option<PadKind>); 4] = [
        (MergeStrategy::Linear, Some(PadKind::Linear)),
        (MergeStrategy::Linear, None),
        (MergeStrategy::Stack, None),
        (MergeStrategy::Tac, None),
    ];
    for backend in Backend::ALL {
        let codec = backend.codec();
        for (merge, pad) in arrangements {
            for level in &mr.levels {
                let prep = hqmr::mr::prepare_level(level, merge, pad);
                for (_, f) in prep.blocks() {
                    let fast = codec.compress(f, eb);
                    let slow: Vec<u8> = match backend {
                        Backend::Sz3 { interp, level_eb } => {
                            hqmr_sz3::reference::compress(
                                f,
                                &Sz3Config {
                                    eb,
                                    interp,
                                    level_eb,
                                },
                            )
                            .bytes
                        }
                        Backend::Sz2 { block } => {
                            hqmr_sz2::reference::compress(f, &hqmr::sz2::Sz2Config { eb, block })
                                .bytes
                        }
                        Backend::Zfp => {
                            hqmr_zfp::reference::compress(f, &hqmr::zfp::ZfpConfig::new(eb)).bytes
                        }
                        Backend::Null => {
                            let back = codec.decompress(&fast).expect("null decodes");
                            assert_eq!(
                                as_bits(&back),
                                as_bits(f),
                                "null backend must round-trip prepared arrays"
                            );
                            fast.clone()
                        }
                    };
                    assert_eq!(
                        fast,
                        slow,
                        "{backend:?} {merge:?} pad={pad:?} {}: stream drift",
                        f.dims()
                    );
                }
            }
        }
    }
}

/// f32 payloads compared exactly (NaN-safe, −0.0 ≠ +0.0).
fn as_bits(f: &Field3) -> Vec<u32> {
    f.data().iter().map(|v| v.to_bits()).collect()
}
