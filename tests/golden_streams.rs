//! Golden-stream format lock: committed encoded fixtures for every backend ×
//! arrangement, produced by the pre-overhaul bit-IO/Huffman path.
//!
//! The throughput work on the codec hot path (word-at-a-time bit-IO,
//! table-driven entropy coding) must not change a single bit of the on-disk
//! formats. These tests prove it: `compress_mr` must reproduce each fixture
//! byte-for-byte, and each fixture must still decode to the same blocks as a
//! fresh stream.
//!
//! Regenerate (only when the format is *intentionally* changed) with:
//! `HQMR_BLESS_GOLDEN=1 cargo test --test golden_streams`

use hqmr::grid::{Dims3, Field3};
use hqmr::mr::{to_adaptive, MergeStrategy, PadKind, RoiConfig};
use hqmr::workflow::mrc::{compress_mr, decompress_mr, Backend, MrcConfig};
use std::path::PathBuf;

/// Deterministic test field: pure integer arithmetic mapped to f32 (no
/// transcendentals, no RNG), so the fixture input is bit-stable everywhere.
/// A spike exercises the SZ outlier path; the modular pattern gives the
/// entropy stage a skewed but multi-symbol distribution.
fn golden_field() -> Field3 {
    let mut f = Field3::from_fn(Dims3::new(24, 24, 24), |x, y, z| {
        let h = (x * 31 + y * 17 + z * 7) % 23;
        let r = (x * 13 + y * 29 + z * 5) % 97;
        h as f32 * 0.5 + r as f32 * 0.01 - 5.0
    });
    f.set(5, 6, 7, 4.0e4);
    f
}

const ARRANGEMENTS: [(&str, MergeStrategy, Option<PadKind>); 4] = [
    ("linpad", MergeStrategy::Linear, Some(PadKind::Linear)),
    ("linear", MergeStrategy::Linear, None),
    ("stack", MergeStrategy::Stack, None),
    ("tac", MergeStrategy::Tac, None),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn backend_name(b: Backend) -> &'static str {
    b.name()
}

#[test]
fn compressed_streams_match_committed_fixtures() {
    let f = golden_field();
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    let eb = f.range() as f64 * 2e-3;
    let bless = std::env::var_os("HQMR_BLESS_GOLDEN").is_some();
    if bless {
        std::fs::create_dir_all(fixture_dir()).unwrap();
    }

    for backend in Backend::ALL {
        for (aname, merge, pad) in ARRANGEMENTS {
            let cfg = MrcConfig {
                eb,
                merge,
                pad,
                backend,
            };
            let (bytes, _) = compress_mr(&mr, &cfg);
            let path = fixture_dir().join(format!("{}_{aname}.bin", backend_name(backend)));
            if bless {
                std::fs::write(&path, &bytes).unwrap();
                continue;
            }
            let fixture = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
            assert_eq!(
                bytes.len(),
                fixture.len(),
                "{backend:?}/{aname}: stream length drifted from the committed format"
            );
            assert_eq!(
                bytes, fixture,
                "{backend:?}/{aname}: compressed stream is no longer bit-identical \
                 to the committed format"
            );

            // The fixture (old-path bytes) must decode identically to a fresh
            // stream — locks the read side too.
            let from_fixture = decompress_mr(&fixture).unwrap();
            let from_fresh = decompress_mr(&bytes).unwrap();
            assert_eq!(
                from_fixture, from_fresh,
                "{backend:?}/{aname}: decode drift"
            );
        }
    }
    assert!(
        !bless,
        "fixtures regenerated; rerun without HQMR_BLESS_GOLDEN"
    );
}
