//! Property tests for the [`hqmr::codec::Codec`] trait contract, run
//! uniformly over every backend: the error bound holds on arbitrary synthetic
//! fields, streams are self-identifying, and malformed or foreign input
//! produces typed errors — never panics.

use hqmr::codec::{Codec, CodecError, NullCodec};
use hqmr::grid::{Dims3, Field3};
use hqmr::sz2::Sz2Codec;
use hqmr::sz3::Sz3Codec;
use hqmr::zfp::ZfpCodec;
use proptest::prelude::*;

/// Every registered backend, boxed for uniform iteration.
fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Sz3Codec::default()),
        Box::new(Sz3Codec::PAPER),
        Box::new(Sz2Codec::default()),
        Box::new(Sz2Codec::MULTIRES),
        Box::new(ZfpCodec),
        Box::new(NullCodec),
    ]
}

fn max_abs(a: &Field3, b: &Field3) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

/// Deterministic pseudo-random field from hashed coordinates.
fn synth_field(dims: Dims3, seed: u64, exp: i32) -> Field3 {
    Field3::from_fn(dims, |x, y, z| {
        let h =
            (x.wrapping_mul(73_856_093) ^ y.wrapping_mul(19_349_663) ^ z.wrapping_mul(83_492_791))
                .wrapping_add(seed as usize);
        ((h % 2048) as f32 / 1024.0 - 1.0) * 10f32.powi(exp)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `|x − x̂| ≤ eb` for every backend on arbitrary small fields.
    #[test]
    fn all_codecs_respect_error_bound(
        nx in 1usize..10, ny in 1usize..10, nz in 1usize..20,
        seedv in 0u64..1000, exp in -2i32..3,
    ) {
        let f = synth_field(Dims3::new(nx, ny, nz), seedv, exp);
        let eb = (f.range() as f64 * 1e-2).max(1e-12);
        for codec in all_codecs() {
            let bytes = codec.compress(&f, eb);
            let g = codec.decompress(&bytes).unwrap();
            prop_assert_eq!(g.dims(), f.dims(), "{} changed dims", codec.name());
            let e = max_abs(&f, &g);
            prop_assert!(e <= eb + 1e-15, "{}: err {e} > eb {eb}", codec.name());
        }
    }

    /// Truncation anywhere in the stream yields `Err`, never a panic.
    #[test]
    fn truncated_streams_error_for_all_codecs(
        n in 2usize..8, seedv in 0u64..500, cut_frac in 1usize..99,
    ) {
        let f = synth_field(Dims3::cube(n), seedv, 0);
        let eb = (f.range() as f64 * 1e-2).max(1e-12);
        for codec in all_codecs() {
            let bytes = codec.compress(&f, eb);
            let cut = bytes.len() * cut_frac / 100;
            prop_assert!(
                codec.decompress(&bytes[..cut]).is_err(),
                "{} accepted a stream cut at {cut}/{}",
                codec.name(),
                bytes.len()
            );
        }
    }

    /// Single-byte corruption is either detected (the overwhelmingly common
    /// case, via CRC) or at worst decodes to *something* — it never panics.
    #[test]
    fn corrupted_streams_never_panic(
        n in 2usize..8, seedv in 0u64..500, flip_at in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let f = synth_field(Dims3::cube(n), seedv, 0);
        let eb = (f.range() as f64 * 1e-2).max(1e-12);
        for codec in all_codecs() {
            let mut bytes = codec.compress(&f, eb);
            let i = flip_at % bytes.len();
            bytes[i] ^= 1 << flip_bit;
            let _ = codec.decompress(&bytes);
        }
    }
}

/// Feeding one backend's stream to another yields the typed
/// [`CodecError::WrongStreamId`] — the ids actually disagree pairwise.
#[test]
fn foreign_streams_yield_wrong_stream_id() {
    let f = synth_field(Dims3::cube(8), 7, 0);
    let eb = f.range() as f64 * 1e-2;
    let codecs = all_codecs();
    for producer in &codecs {
        let bytes = producer.compress(&f, eb);
        for consumer in &codecs {
            let result = consumer.decompress(&bytes);
            if consumer.id() == producer.id() {
                assert!(
                    result.is_ok(),
                    "{} rejected its own stream",
                    consumer.name()
                );
            } else {
                match result {
                    Err(CodecError::WrongStreamId { expected, found }) => {
                        assert_eq!(expected, consumer.id());
                        assert_eq!(found, producer.id());
                    }
                    other => panic!(
                        "{} fed a {} stream returned {other:?}, want WrongStreamId",
                        consumer.name(),
                        producer.name()
                    ),
                }
            }
        }
    }
}

/// Garbage that isn't a container at all is rejected with a container error.
#[test]
fn non_container_input_is_rejected() {
    for codec in all_codecs() {
        assert!(matches!(
            codec.decompress(b"not a stream"),
            Err(CodecError::Container(_))
        ));
        assert!(matches!(
            codec.decompress(&[]),
            Err(CodecError::Container(_))
        ));
    }
}

/// The backends' ids are pairwise distinct (the routing registry relies on
/// this).
#[test]
fn codec_ids_are_unique() {
    let codecs = all_codecs();
    for (i, a) in codecs.iter().enumerate() {
        for b in &codecs[i + 1..] {
            if a.name() != b.name() {
                assert_ne!(a.id(), b.id(), "{} vs {}", a.name(), b.name());
            }
        }
    }
}
