//! Property-based tests (proptest) over the core data structures and the
//! compressors' contracts.

use hqmr::codec::{
    huffman_decode, huffman_encode, pack_maybe_rle, rle_decode, rle_encode, unpack_maybe_rle,
    zigzag_decode, zigzag_encode, Container,
};
use hqmr::grid::{Dims3, Field3};
use hqmr::mr::{merge_level, unsplit_level, LevelData, MergeStrategy, UnitBlock};
use proptest::prelude::*;

fn max_abs(a: &Field3, b: &Field3) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Huffman round-trips arbitrary bounded symbol streams.
    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u32..5000, 0..2000)) {
        let enc = huffman_encode(&symbols);
        prop_assert_eq!(huffman_decode(&enc).expect("fresh block decodes"), symbols);
    }

    /// RLE and the maybe-RLE wrapper round-trip arbitrary bytes.
    #[test]
    fn rle_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(rle_decode(&rle_encode(&bytes)), Some(bytes.clone()));
        prop_assert_eq!(unpack_maybe_rle(&pack_maybe_rle(&bytes)), Some(bytes));
    }

    /// Zigzag is a bijection.
    #[test]
    fn zigzag_bijection(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    /// Containers reject arbitrary corruption or parse to the original.
    #[test]
    fn container_fuzz(payload in proptest::collection::vec(any::<u8>(), 1..512),
                      flip_at in any::<usize>()) {
        let mut c = Container::new();
        c.push(hqmr::codec::tag(b"FUZZ"), payload);
        let mut bytes = c.to_bytes();
        let i = flip_at % bytes.len();
        bytes[i] ^= 0x5A;
        // Either detected as corrupt or — if the flip hit padding-free fields
        // consistently — parses to *something*; it must never panic.
        let _ = Container::from_bytes(&bytes);
    }

    /// SZ3 honours arbitrary error bounds on arbitrary small fields.
    #[test]
    fn sz3_bounded(
        nx in 1usize..10, ny in 1usize..10, nz in 1usize..24,
        seedv in 0u64..1000, exp in -3i32..3,
    ) {
        let dims = Dims3::new(nx, ny, nz);
        let f = Field3::from_fn(dims, |x, y, z| {
            let h = (x.wrapping_mul(73856093) ^ y.wrapping_mul(19349663)
                ^ z.wrapping_mul(83492791)).wrapping_add(seedv as usize);
            ((h % 2048) as f32 / 1024.0 - 1.0) * 10f32.powi(exp)
        });
        let eb = (f.range() as f64 * 1e-2).max(1e-12);
        let r = hqmr::sz3::compress(&f, &hqmr::sz3::Sz3Config::new(eb));
        let d = hqmr::sz3::decompress(&r.bytes).unwrap();
        prop_assert!(max_abs(&f, &d) <= eb + 1e-15);
    }

    /// SZ2 honours bounds on arbitrary small fields and block sizes.
    #[test]
    fn sz2_bounded(
        n in 2usize..14, block in 2usize..8, seedv in 0u64..1000,
    ) {
        let f = Field3::from_fn(Dims3::cube(n), |x, y, z| {
            let h = (x * 7 + y * 131 + z * 1999 + seedv as usize) % 997;
            h as f32 * 0.37
        });
        let eb = (f.range() as f64 * 5e-3).max(1e-9);
        let cfg = hqmr::sz2::Sz2Config::new(eb).with_block(block);
        let r = hqmr::sz2::compress(&f, &cfg);
        let d = hqmr::sz2::decompress(&r.bytes).unwrap();
        prop_assert!(max_abs(&f, &d) <= eb + 1e-15);
    }

    /// ZFP honours tolerances on arbitrary fields.
    #[test]
    fn zfp_bounded(
        nx in 1usize..12, ny in 1usize..12, nz in 1usize..12, seedv in 0u64..1000,
    ) {
        let f = Field3::from_fn(Dims3::new(nx, ny, nz), |x, y, z| {
            let h = (x * 31 + y * 17 + z * 13 + seedv as usize) % 513;
            (h as f32 - 256.0) * 0.5
        });
        let tol = (f.range() as f64 * 1e-2).max(1e-9);
        let r = hqmr::zfp::compress(&f, &hqmr::zfp::ZfpConfig::new(tol));
        let d = hqmr::zfp::decompress(&r.bytes).unwrap();
        prop_assert!(max_abs(&f, &d) <= tol);
    }

    /// Merge → split is the identity for arbitrary occupancy patterns across
    /// all strategies.
    #[test]
    fn merge_split_identity(occupancy in proptest::collection::vec(any::<bool>(), 27)) {
        let unit = 4usize;
        let mut blocks = Vec::new();
        for (i, &keep) in occupancy.iter().enumerate() {
            if !keep {
                continue;
            }
            let (bx, by, bz) = (i / 9, (i / 3) % 3, i % 3);
            let data: Vec<f32> = (0..64).map(|k| (i * 64 + k) as f32).collect();
            blocks.push(UnitBlock { origin: [bx * unit, by * unit, bz * unit], data });
        }
        let level = LevelData { level: 0, unit, dims: Dims3::cube(12), blocks: blocks.clone() };
        for strategy in [MergeStrategy::Linear, MergeStrategy::Stack, MergeStrategy::Tac] {
            let merged = merge_level(&level, strategy);
            let pairs: Vec<_> = merged.iter().map(|m| (m, &m.field)).collect();
            let back = unsplit_level(&pairs);
            prop_assert_eq!(&back, &blocks, "{:?}", strategy);
        }
    }

    /// Padding then stripping is the identity for any field shape.
    #[test]
    fn pad_strip_identity(nx in 2usize..10, ny in 2usize..10, nz in 1usize..20) {
        let f = Field3::from_fn(Dims3::new(nx, ny, nz), |x, y, z| {
            (x * 100 + y * 10 + z) as f32
        });
        for kind in [
            hqmr::mr::PadKind::Constant,
            hqmr::mr::PadKind::Linear,
            hqmr::mr::PadKind::Quadratic,
        ] {
            let padded = hqmr::mr::pad_small_dims(&f, kind);
            prop_assert_eq!(&hqmr::mr::strip_padding(&padded), &f);
        }
    }

    /// The FFT round-trip is the identity for arbitrary power-of-two shapes.
    #[test]
    fn fft_roundtrip(lx in 0u32..4, ly in 0u32..4, lz in 0u32..5, seedv in 0u64..100) {
        let (nx, ny, nz) = (1usize << lx, 1usize << ly, 1usize << lz);
        let orig: Vec<hqmr::fft::Complex> = (0..nx * ny * nz)
            .map(|i| hqmr::fft::Complex::new(
                ((i as u64).wrapping_mul(seedv + 7) % 97) as f64 / 10.0,
                ((i as u64).wrapping_mul(seedv + 13) % 89) as f64 / 10.0,
            ))
            .collect();
        let mut data = orig.clone();
        hqmr::fft::fft_3d(&mut data, nx, ny, nz, hqmr::fft::Direction::Forward);
        hqmr::fft::ifft_3d(&mut data, nx, ny, nz);
        for (a, b) in orig.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }
}
