//! Cross-container parity: the block-indexed store and the monolithic MRC
//! stream share the pre-processing stage (`hqmr_mr::prepare`), so a store
//! written with one chunk per level feeds the codec byte-identical arrays
//! and must decode to *bit-for-bit* the same blocks as `decompress_mr` —
//! for every backend and every arrangement.

use hqmr::grid::synth;
use hqmr::mr::{to_adaptive, MergeStrategy, PadKind, RoiConfig};
use hqmr::store::{write_store, StoreConfig, StoreReader};
use hqmr::workflow::mrc::{compress_mr, decompress_mr, Backend, MrcConfig};

#[test]
fn store_roundtrip_matches_decompress_mr_bit_for_bit() {
    let f = synth::nyx_like(32, 47);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    let eb = f.range() as f64 * 2e-3;
    for backend in Backend::ALL {
        for (merge, pad) in [
            (MergeStrategy::Linear, Some(PadKind::Linear)),
            (MergeStrategy::Linear, None),
            (MergeStrategy::Stack, None),
            (MergeStrategy::Tac, None),
        ] {
            let mrc = MrcConfig {
                eb,
                merge,
                pad,
                backend,
            };
            let (mono_bytes, _) = compress_mr(&mr, &mrc);
            let mono = decompress_mr(&mono_bytes).unwrap();

            let scfg = StoreConfig {
                eb,
                merge,
                pad,
                chunk_blocks: usize::MAX,
                parity_group: 0,
            };
            let buf = write_store(&mr, &scfg, backend.codec().as_ref());
            let store = StoreReader::from_bytes(buf).unwrap().read_all().unwrap();

            assert_eq!(
                store, mono,
                "{backend:?} {merge:?} pad={pad:?}: store and monolithic \
                 containers must decode identically"
            );
        }
    }
}

#[test]
fn store_records_codec_and_bound_in_directory() {
    let f = synth::nyx_like(32, 53);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.4));
    let eb = f.range() as f64 * 1e-3;
    for backend in Backend::ALL {
        let scfg = StoreConfig::new(eb).with_chunk_blocks(4);
        let buf = write_store(&mr, &scfg, backend.codec().as_ref());
        let r = StoreReader::from_bytes(buf).unwrap();
        assert_eq!(r.meta().codec_id, backend.id());
        assert_eq!(r.codec_name(), backend.name());
        assert_eq!(r.meta().eb, eb);
        assert_eq!(r.meta().domain, mr.domain);
    }
}
