//! Differential property tests for the codec hot path: the word-at-a-time
//! bit-IO and table-driven Huffman coder must be observationally identical to
//! the per-bit reference implementations they replaced — same bytes out, same
//! symbols (or the same typed error) back, for generated distributions,
//! length-limited codes, and truncated input.

use hqmr::codec::bitio::{self, reference};
use hqmr::codec::huffman::{
    huffman_decode, huffman_decode_reference, huffman_encode, huffman_encode_reference,
};
use proptest::prelude::*;

/// Reads the same width sequence from both readers and asserts bit-for-bit
/// agreement, including positions and zero-padded reads past the end.
fn assert_readers_agree(stream: &[u8], widths: &[u32]) {
    let mut fast = bitio::BitReader::new(stream);
    let mut slow = reference::BitReader::new(stream);
    for &n in widths {
        assert_eq!(fast.read_bits(n), slow.read_bits(n), "width {n}");
        assert_eq!(fast.bit_pos(), slow.bit_pos());
        assert_eq!(fast.remaining(), slow.remaining());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Word-at-a-time writes produce byte-identical streams to per-bit
    /// writes, and both readers recover the same values.
    #[test]
    fn bitio_write_read_equivalence(ops in proptest::collection::vec(any::<u64>(), 1..300)) {
        let mut fast = bitio::BitWriter::new();
        let mut slow = reference::BitWriter::new();
        let mut widths = Vec::with_capacity(ops.len() + 8);
        for &v in &ops {
            let n = 1 + (v % 64) as u32;
            fast.write_bits(v, n);
            slow.write_bits(v, n);
            prop_assert_eq!(fast.bit_len(), slow.bit_len());
            widths.push(n);
        }
        let fb = fast.finish();
        let sb = slow.finish();
        prop_assert_eq!(&fb, &sb, "writer streams diverged");
        // Read back with the writing widths, then overshoot the end to pin
        // the zero-padding semantics too.
        widths.extend([64u32, 1, 7, 13, 64]);
        assert_readers_agree(&fb, &widths);
    }

    /// Readers agree on arbitrary byte streams under arbitrary read splits —
    /// not just splits aligned with how the stream was written.
    #[test]
    fn bitio_read_split_equivalence(
        stream in proptest::collection::vec(any::<u8>(), 0..200),
        splits in proptest::collection::vec(0u32..65, 1..200),
    ) {
        assert_readers_agree(&stream, &splits);
    }

    /// Peek/consume (the table-decoder primitive) equals plain reads.
    #[test]
    fn peek_consume_equivalence(
        stream in proptest::collection::vec(any::<u8>(), 0..200),
        splits in proptest::collection::vec(1u32..57, 1..200),
    ) {
        let mut peeker = bitio::BitReader::new(&stream);
        let mut reader = reference::BitReader::new(&stream);
        for &n in &splits {
            let peeked = peeker.peek_bits(n);
            peeker.consume(n);
            prop_assert_eq!(peeked, reader.read_bits(n), "width {}", n);
            prop_assert_eq!(peeker.bit_pos(), reader.bit_pos());
        }
    }

    /// Table-driven Huffman encode/decode is byte- and symbol-identical to
    /// the per-bit reference over skewed (quantizer-like) distributions.
    #[test]
    fn huffman_equivalence_skewed(seeds in proptest::collection::vec(any::<u64>(), 0..3000)) {
        // Sharpen the distribution: most symbols collapse to one code, a
        // tail stays spread — the shape SZ quantizers emit.
        let symbols: Vec<u32> = seeds
            .iter()
            .map(|&s| match s % 100 {
                0..=79 => 1000,
                80..=94 => 1000 + (s % 7) as u32,
                _ => (s % 4096) as u32,
            })
            .collect();
        let fast = huffman_encode(&symbols);
        let slow = huffman_encode_reference(&symbols);
        prop_assert_eq!(&fast, &slow, "encoders diverged");
        prop_assert_eq!(huffman_decode(&fast).unwrap(), symbols.clone());
        prop_assert_eq!(huffman_decode_reference(&fast).unwrap(), symbols);
    }

    /// Equivalence holds on uniform (deep-table) distributions too.
    #[test]
    fn huffman_equivalence_uniform(symbols in proptest::collection::vec(0u32..5000, 0..2000)) {
        let fast = huffman_encode(&symbols);
        let slow = huffman_encode_reference(&symbols);
        prop_assert_eq!(&fast, &slow, "encoders diverged");
        prop_assert_eq!(huffman_decode(&fast).unwrap(), symbols.clone());
        prop_assert_eq!(huffman_decode_reference(&fast).unwrap(), symbols);
    }

    /// On truncated input both decoders return the *same* outcome — the same
    /// recovered prefix or the same typed error, never a panic.
    #[test]
    fn huffman_truncation_equivalence(
        seeds in proptest::collection::vec(any::<u64>(), 1..500),
        cut_frac in 0u32..100,
    ) {
        let symbols: Vec<u32> = seeds.iter().map(|&s| (s % 97) as u32).collect();
        let enc = huffman_encode(&symbols);
        let cut = (enc.len() * cut_frac as usize) / 100;
        let fast = huffman_decode(&enc[..cut]);
        let slow = huffman_decode_reference(&enc[..cut]);
        prop_assert_eq!(fast, slow, "decoders diverged on cut {}", cut);
    }
}

/// Fibonacci-weighted frequencies deep enough to trip the Kraft length
/// limiter (`MAX_CODE_LEN = 32`): both coders must agree on the limited code
/// set, and the (large) stream must round-trip on both paths.
#[test]
fn huffman_equivalence_length_limited() {
    // 35 symbols with Fibonacci counts force an unlimited depth of 34 > 32,
    // so this exercises the limit_lengths fixup, the spill path (codes far
    // past the 11-bit table), and the walk.
    let mut symbols = Vec::new();
    let (mut a, mut b) = (1u64, 1u64);
    for sym in 0..35u32 {
        for _ in 0..a {
            symbols.push(sym);
        }
        let c = a + b;
        a = b;
        b = c;
    }
    assert!(symbols.len() > 9_000_000, "need enough mass for depth > 32");
    let fast = huffman_encode(&symbols);
    let slow = huffman_encode_reference(&symbols);
    assert_eq!(fast, slow, "length-limited encoders diverged");
    assert_eq!(huffman_decode(&fast).unwrap(), symbols);
    assert_eq!(huffman_decode_reference(&fast).unwrap(), symbols);
}
