//! Self-healing properties of the parity/scrub subsystem:
//!
//! * a single bit-flip in **any** chunk of a store heals back to the
//!   byte-identical pristine file via `scrub_store`;
//! * two corrupt chunks in one parity group are a *typed* loss
//!   (`unrepairable` names exactly the casualties), never a panic or a
//!   silent wrong answer;
//! * `TemporalWriter::salvage` of a torn run keeps exactly the unbroken
//!   prefix, reports the casualties, and a resumed run converges
//!   byte-identically with a run that never crashed;
//! * arbitrarily truncated or bit-flipped sidecar and manifest bytes
//!   always parse to a typed error — hostile input cannot panic the
//!   decoder.

use hqmr::grid::{synth, Dims3};
use hqmr::mr::{resample_like, to_adaptive, RoiConfig};
use hqmr::store::temporal::{Prediction, TemporalManifest, TemporalReader};
use hqmr::store::{
    parity_path, parse_head, scrub_store, write_store_with_parity, ParitySidecar, SidecarStatus,
    StoreConfig,
};
use hqmr::sz3::Sz3Codec;
use hqmr::workflow::mrc::MrcConfig;
use hqmr::workflow::TemporalWriter;
use proptest::prelude::*;
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A store + sidecar byte pair over a small synthetic field.
fn store_pair(group: usize) -> (Vec<u8>, Vec<u8>) {
    let f = synth::nyx_like(16, 511);
    let mr = to_adaptive(&f, &RoiConfig::new(8, 0.5));
    let cfg = StoreConfig::new(1e-3)
        .with_chunk_blocks(2)
        .with_parity_group(group);
    let (store, parity) = write_store_with_parity(&mr, &cfg, &Sz3Codec::default());
    (store, parity.expect("parity enabled"))
}

/// Byte offset (within the whole store buffer) of one payload byte of
/// chunk `(level, block)`.
fn chunk_byte(store: &[u8], level: usize, block: usize) -> usize {
    let (meta, data_start) = parse_head(store).unwrap();
    let c = &meta.levels[level].chunks[block];
    assert!(c.len > 0);
    data_start as usize + c.offset as usize
}

/// Single-flip healing, exhaustively over every chunk: whichever chunk
/// rots, the scrub repairs it bit-exactly and leaves the file identical to
/// the pristine store.
#[test]
fn single_flip_in_any_chunk_heals_byte_identical() {
    let (pristine, parity) = store_pair(8);
    let (meta, _) = parse_head(&pristine).unwrap();
    let dir = fresh_dir("hqmr_scrubprops_single");
    let path = dir.join("s.hqst");
    std::fs::write(parity_path(&path), &parity).unwrap();

    for (level, lm) in meta.levels.iter().enumerate() {
        for block in 0..lm.chunks.len() {
            let mut rotted = pristine.clone();
            rotted[chunk_byte(&pristine, level, block)] ^= 0x01;
            std::fs::write(&path, &rotted).unwrap();

            let report = scrub_store(&path, None).unwrap();
            assert_eq!(
                (report.repaired, report.unrepairable.len()),
                (1, 0),
                "chunk ({level}, {block}) must repair"
            );
            assert!(report.all_exact());
            assert_eq!(report.sidecar, SidecarStatus::Present);
            assert_eq!(
                std::fs::read(&path).unwrap(),
                pristine,
                "healed store must be byte-identical to the pristine one"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two corrupt chunks in the same XOR group exceed the redundancy: the
/// scrub must report exactly those two as unrepairable — typed loss, not a
/// wrong answer — and leave the undamaged chunks verified.
#[test]
fn double_flip_in_one_group_is_typed_unrepairable() {
    let (pristine, parity) = store_pair(8);
    let (meta, _) = parse_head(&pristine).unwrap();
    let total: usize = meta.levels.iter().map(|l| l.chunks.len()).sum();
    assert!(total >= 2, "need at least two chunks in the first group");

    // Flat chunks 0 and 1 share a group at any group size >= 2.
    let victims = [(0, 0), (0, 1)];
    let mut rotted = pristine.clone();
    for &(l, b) in &victims {
        rotted[chunk_byte(&pristine, l, b)] ^= 0x80;
    }
    let dir = fresh_dir("hqmr_scrubprops_double");
    let path = dir.join("s.hqst");
    std::fs::write(&path, &rotted).unwrap();
    std::fs::write(parity_path(&path), &parity).unwrap();

    let report = scrub_store(&path, None).unwrap();
    assert_eq!(report.repaired, 0);
    assert_eq!(report.unrepairable, victims.to_vec());
    assert!(!report.all_exact());
    assert_eq!(report.verified, total - victims.len());
    // The casualties stay on disk untouched — no destructive "repair".
    assert_eq!(std::fs::read(&path).unwrap(), rotted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-run salvage: truncate one frame mid-file (the crash shape the
/// manifest ordering cannot rule out) and salvage must (1) keep exactly
/// the unbroken prefix, (2) report the dropped tail by name, and (3) hand
/// back a writer whose resumed appends converge byte-identically with a
/// run that never crashed.
#[test]
fn salvage_keeps_prefix_and_resume_matches_unbroken_run() {
    const STEPS: usize = 6;
    const TORN: usize = 4;
    let frames = synth::advected_sequence(Dims3::cube(16), STEPS, [0.5, 0.25, 0.0], 77);
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    let mrs: Vec<_> = frames.iter().map(|f| resample_like(&template, f)).collect();
    let cfg = MrcConfig::baseline(0.02);

    // The unbroken control run.
    let dir_a = fresh_dir("hqmr_scrubprops_salvage_a");
    let mut wa = TemporalWriter::create(&dir_a, &cfg, Prediction::delta()).unwrap();
    for (t, mr) in mrs.iter().enumerate() {
        wa.append(t as u64, mr).unwrap();
    }

    // The crashed run: identical, then frame TORN is torn in half.
    let dir_b = fresh_dir("hqmr_scrubprops_salvage_b");
    let mut wb = TemporalWriter::create(&dir_b, &cfg, Prediction::delta()).unwrap();
    for (t, mr) in mrs.iter().enumerate() {
        wb.append(t as u64, mr).unwrap();
    }
    drop(wb);
    let manifest = TemporalReader::read_manifest(&dir_b).unwrap();
    let torn_file = manifest.frames[TORN].file.clone();
    let torn_path = dir_b.join(&torn_file);
    let full = std::fs::read(&torn_path).unwrap();
    std::fs::write(&torn_path, &full[..full.len() / 2]).unwrap();

    let (mut writer, report) = TemporalWriter::salvage(&dir_b, &cfg, Prediction::delta()).unwrap();
    assert_eq!(report.kept, TORN);
    let dropped: Vec<String> = manifest.frames[TORN..]
        .iter()
        .map(|fm| fm.file.clone())
        .collect();
    assert_eq!(report.dropped, dropped, "typed casualty list");
    // The republished manifest names exactly the unbroken prefix.
    let salvaged = TemporalReader::read_manifest(&dir_b).unwrap();
    assert_eq!(salvaged.frames.len(), TORN);

    // Resume where the crash cut: the run must converge with the control.
    for (t, mr) in mrs.iter().enumerate().skip(TORN) {
        writer.append(t as u64, mr).unwrap();
    }
    drop(writer);
    let ra = TemporalReader::open(&dir_a).unwrap();
    let rb = TemporalReader::open(&dir_b).unwrap();
    assert_eq!(rb.frame_count(), STEPS);
    for t in 0..STEPS {
        assert_eq!(
            ra.read_frame(t).unwrap(),
            rb.read_frame(t).unwrap(),
            "frame {t}: salvaged+resumed run must decode identically"
        );
    }
    // Stronger: the resumed frame files are byte-identical to the control's
    // (closed-loop encoder state was reconstructed bit-exactly).
    let ma = TemporalReader::read_manifest(&dir_a).unwrap();
    let mb = TemporalReader::read_manifest(&dir_b).unwrap();
    for (fa, fb) in ma.frames.iter().zip(&mb.frames) {
        assert_eq!(
            std::fs::read(dir_a.join(&fa.file)).unwrap(),
            std::fs::read(dir_b.join(&fb.file)).unwrap(),
            "{}: resumed frame bytes must match the unbroken run",
            fb.file
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// Salvage also heals single-chunk rot inside the kept prefix instead of
/// dropping the frame: the sidecar is there for exactly this.
#[test]
fn salvage_heals_flipped_chunk_in_kept_prefix() {
    const STEPS: usize = 3;
    let frames = synth::advected_sequence(Dims3::cube(16), STEPS, [0.5, 0.25, 0.0], 78);
    let template = to_adaptive(&frames[0], &RoiConfig::new(8, 0.5));
    let cfg = MrcConfig::baseline(0.02);
    let dir = fresh_dir("hqmr_scrubprops_salvage_heal");
    let mut w = TemporalWriter::create(&dir, &cfg, Prediction::delta()).unwrap();
    for (t, f) in frames.iter().enumerate() {
        w.append(t as u64, &resample_like(&template, f)).unwrap();
    }
    drop(w);

    let manifest = TemporalReader::read_manifest(&dir).unwrap();
    let victim = dir.join(&manifest.frames[1].file);
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = chunk_byte(&bytes, 0, 0);
    bytes[at] ^= 0x04;
    std::fs::write(&victim, &bytes).unwrap();

    let (_writer, report) = TemporalWriter::salvage(&dir, &cfg, Prediction::delta()).unwrap();
    assert_eq!(report.kept, STEPS, "a healable flip must not cost a frame");
    assert_eq!(report.repaired_chunks, 1);
    assert!(report.dropped.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncated sidecar bytes always parse to a typed error.
    #[test]
    fn truncated_sidecar_is_typed(cut in 1usize..4096) {
        let (_, parity) = store_pair(4);
        let keep = parity.len().saturating_sub(1 + cut % parity.len());
        prop_assert!(ParitySidecar::from_bytes(&parity[..keep]).is_err());
    }

    /// Bit-flipped sidecar bytes never panic: they parse to a typed error
    /// or to a sidecar (a flip inside a parity payload is caught later by
    /// the per-group CRC at reconstruction time).
    #[test]
    fn flipped_sidecar_never_panics(at in any::<usize>(), bit in 0u8..8) {
        let (_, parity) = store_pair(4);
        let mut bytes = parity.clone();
        let i = at % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = ParitySidecar::from_bytes(&bytes);
    }

    /// Truncated manifest bytes always parse to a typed error.
    #[test]
    fn truncated_manifest_is_typed(cut in 1usize..4096) {
        let bytes = TemporalManifest::default().to_bytes();
        let keep = bytes.len().saturating_sub(1 + cut % bytes.len());
        prop_assert!(TemporalManifest::from_bytes(&bytes[..keep]).is_err());
    }

    /// Bit-flipped manifest bytes never panic and — thanks to the body
    /// CRC — essentially always fail typed.
    #[test]
    fn flipped_manifest_never_panics(at in any::<usize>(), bit in 0u8..8) {
        let mut bytes = TemporalManifest::default().to_bytes();
        let i = at % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = TemporalManifest::from_bytes(&bytes);
    }
}
